"""Tests for Cached Leapfrog Trie Join (the paper's Figure 2 algorithm)."""

import pytest

from repro.core.cache import (
    AdhesionCache,
    AlwaysCachePolicy,
    BoundedCachePolicy,
    NeverCachePolicy,
    SupportThresholdPolicy,
)
from repro.core.clftj import CachedLeapfrogTrieJoin, clftj_count
from repro.core.instrumentation import OperationCounter
from repro.core.lftj import LeapfrogTrieJoin
from repro.decomposition.generic import enumerate_tree_decompositions, generic_decompose
from repro.decomposition.ordering import strongly_compatible_order
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.query.parser import parse_query
from repro.query.patterns import clique_query, cycle_query, lollipop_query, path_query
from repro.query.terms import Variable

from tests.conftest import brute_force_count, brute_force_evaluate


def _paper_example_query():
    """The query of the paper's Figure 3 / Example 3.1."""
    return parse_query(
        "R(x1, x2), R(x2, x3), R(x2, x4), R(x3, x4), R(x3, x5), R(x4, x6)",
        name="figure3",
    )


def _paper_example_td() -> TreeDecomposition:
    """The ordered TD on the right of Figure 3."""
    return TreeDecomposition.build(
        (
            ["x1", "x2"],
            [
                (
                    ["x2", "x3", "x4"],
                    [
                        (["x3", "x5"], []),
                        (["x4", "x6"], []),
                    ],
                )
            ],
        )
    )


class TestPaperExample:
    def test_count_on_example_database(self, tiny_db):
        query = _paper_example_query()
        decomposition = _paper_example_td()
        order = tuple(Variable(f"x{i}") for i in range(1, 7))
        joiner = CachedLeapfrogTrieJoin(query, tiny_db, decomposition, order)
        # Every variable ranges freely over {1, 2}: 2^6 results.
        assert joiner.count() == 64
        assert joiner.count() == brute_force_count(query, tiny_db)

    def test_cache_stores_the_value_16_for_the_subtree(self, tiny_db):
        """Example 3.1: the subtree owning x3..x6 has 16 assignments per x2 value."""
        query = _paper_example_query()
        decomposition = _paper_example_td()
        order = tuple(Variable(f"x{i}") for i in range(1, 7))
        cache = AdhesionCache()
        CachedLeapfrogTrieJoin(query, tiny_db, decomposition, order, cache=cache).count()
        subtree_node = 1  # the child bag {x2, x3, x4}
        # Adhesion keys live in dictionary-code space on the encoded path.
        code = tiny_db.dictionary.code_of if tiny_db.encoding_active else (lambda v: v)
        assert cache.get(subtree_node, (code(1),)) == 16
        assert cache.get(subtree_node, (code(2),)) == 16

    def test_cache_hits_occur_on_second_x2_value(self, tiny_db):
        query = _paper_example_query()
        counter = OperationCounter()
        joiner = CachedLeapfrogTrieJoin(
            query, tiny_db, _paper_example_td(),
            tuple(Variable(f"x{i}") for i in range(1, 7)),
            counter=counter,
        )
        joiner.count()
        assert counter.cache_hits >= 1

    def test_evaluation_matches_brute_force(self, tiny_db):
        query = _paper_example_query()
        joiner = CachedLeapfrogTrieJoin(query, tiny_db, _paper_example_td())
        produced = {
            tuple(row[variable] for variable in query.variables)
            for row in joiner.evaluate_all()
        }
        assert produced == brute_force_evaluate(query, tiny_db)


class TestAgreementWithLftjAndBruteForce:
    @pytest.mark.parametrize("query_factory", [
        lambda: path_query(3),
        lambda: path_query(4),
        lambda: cycle_query(4),
        lambda: cycle_query(5),
        lambda: lollipop_query(3, 2),
    ])
    def test_counts_agree(self, small_graph_db, query_factory):
        query = query_factory()
        expected = brute_force_count(query, small_graph_db)
        decomposition = generic_decompose(query)
        assert clftj_count(query, small_graph_db, decomposition) == expected
        assert LeapfrogTrieJoin(query, small_graph_db).count() == expected

    def test_counts_agree_on_every_enumerated_decomposition(self, small_graph_db):
        query = cycle_query(5)
        expected = brute_force_count(query, small_graph_db)
        decompositions = list(enumerate_tree_decompositions(query, max_decompositions=6))
        assert decompositions
        for decomposition in decompositions:
            assert clftj_count(query, small_graph_db, decomposition) == expected

    def test_counts_agree_on_skewed_data(self, skewed_graph_db):
        query = path_query(4)
        expected = brute_force_count(query, skewed_graph_db)
        decomposition = generic_decompose(query)
        assert clftj_count(query, skewed_graph_db, decomposition) == expected

    def test_evaluation_sets_agree(self, small_graph_db):
        query = cycle_query(4)
        decomposition = generic_decompose(query)
        joiner = CachedLeapfrogTrieJoin(query, small_graph_db, decomposition)
        produced = {
            tuple(row[variable] for variable in query.variables)
            for row in joiner.evaluate_all()
        }
        assert produced == brute_force_evaluate(query, small_graph_db)

    def test_multi_relation_query(self, two_relation_db):
        query = parse_query("R(x, y), S(y, z), R(z, w)")
        decomposition = generic_decompose(query)
        assert clftj_count(query, two_relation_db, decomposition) == brute_force_count(
            query, two_relation_db
        )

    def test_clique_degenerates_to_singleton_decomposition(self, small_graph_db):
        query = clique_query(3)
        decomposition = TreeDecomposition.singleton(query.variables)
        counter = OperationCounter()
        joiner = CachedLeapfrogTrieJoin(query, small_graph_db, decomposition, counter=counter)
        assert joiner.count() == brute_force_count(query, small_graph_db)
        # A single bag has no adhesions, so nothing can ever be cached.
        assert counter.cache_hits == 0
        assert counter.cache_insertions == 0


class TestNoCachingCoincidesWithLftj:
    """Section 3.2: with no caching the two algorithms coincide."""

    @pytest.mark.parametrize("query_factory", [
        lambda: path_query(3),
        lambda: cycle_query(4),
    ])
    def test_trie_operation_counts_identical(self, small_graph_db, query_factory):
        query = query_factory()
        decomposition = generic_decompose(query)
        order = strongly_compatible_order(decomposition)

        lftj_counter = OperationCounter()
        LeapfrogTrieJoin(query, small_graph_db, order, lftj_counter).count()

        clftj_counter = OperationCounter()
        CachedLeapfrogTrieJoin(
            query, small_graph_db, decomposition, order,
            policy=NeverCachePolicy(), counter=clftj_counter,
        ).count()

        assert clftj_counter.trie_accesses == lftj_counter.trie_accesses
        assert clftj_counter.trie_seeks == lftj_counter.trie_seeks
        assert clftj_counter.trie_nexts == lftj_counter.trie_nexts
        assert clftj_counter.trie_opens == lftj_counter.trie_opens

    def test_zero_capacity_cache_behaves_like_lftj(self, small_graph_db):
        query = path_query(4)
        decomposition = generic_decompose(query)
        order = strongly_compatible_order(decomposition)
        lftj_counter = OperationCounter()
        LeapfrogTrieJoin(query, small_graph_db, order, lftj_counter).count()
        clftj_counter = OperationCounter()
        CachedLeapfrogTrieJoin(
            query, small_graph_db, decomposition, order,
            cache=AdhesionCache(capacity=0), counter=clftj_counter,
        ).count()
        assert clftj_counter.trie_accesses == lftj_counter.trie_accesses
        assert clftj_counter.cache_hits == 0


class TestCachingBenefits:
    def test_caching_reduces_trie_traffic_on_skewed_data(self, skewed_graph_db):
        query = path_query(4)
        decomposition = generic_decompose(query)
        order = strongly_compatible_order(decomposition)

        lftj_counter = OperationCounter()
        LeapfrogTrieJoin(query, skewed_graph_db, order, lftj_counter).count()

        clftj_counter = OperationCounter()
        CachedLeapfrogTrieJoin(
            query, skewed_graph_db, decomposition, order, counter=clftj_counter
        ).count()

        assert clftj_counter.cache_hits > 0
        assert clftj_counter.trie_accesses < lftj_counter.trie_accesses

    def test_bounded_cache_still_correct_and_smaller(self, skewed_graph_db):
        query = path_query(4)
        decomposition = generic_decompose(query)
        expected = brute_force_count(query, skewed_graph_db)
        bounded = AdhesionCache(capacity=5, eviction="lru")
        joiner = CachedLeapfrogTrieJoin(query, skewed_graph_db, decomposition, cache=bounded)
        assert joiner.count() == expected
        assert len(bounded) <= 5

    def test_support_threshold_policy_correct(self, skewed_graph_db):
        query = path_query(4)
        decomposition = generic_decompose(query)
        policy = SupportThresholdPolicy(skewed_graph_db, query, threshold=3)
        expected = brute_force_count(query, skewed_graph_db)
        assert clftj_count(query, skewed_graph_db, decomposition, policy=policy) == expected

    def test_bounded_per_node_policy_correct(self, skewed_graph_db):
        query = path_query(4)
        decomposition = generic_decompose(query)
        policy = BoundedCachePolicy(max_entries_per_node=2)
        expected = brute_force_count(query, skewed_graph_db)
        assert clftj_count(query, skewed_graph_db, decomposition, policy=policy) == expected

    def test_cache_report_structure(self, skewed_graph_db):
        query = path_query(3)
        decomposition = generic_decompose(query)
        joiner = CachedLeapfrogTrieJoin(query, skewed_graph_db, decomposition)
        joiner.count()
        report = joiner.cache_report()
        assert report["entries"] == len(joiner.cache)
        assert report["hits"] == joiner.counter.cache_hits
        assert 0.0 <= report["hit_rate"] <= 1.0

    def test_cache_reuse_across_runs(self, skewed_graph_db):
        """A warm cache turns the second count into mostly cache hits."""
        query = path_query(4)
        decomposition = generic_decompose(query)
        cache = AdhesionCache()
        first = CachedLeapfrogTrieJoin(query, skewed_graph_db, decomposition, cache=cache)
        cold_count = first.count()
        second = CachedLeapfrogTrieJoin(query, skewed_graph_db, decomposition, cache=cache)
        warm_count = second.count()
        assert cold_count == warm_count
        assert second.counter.trie_accesses < first.counter.trie_accesses


class TestEvaluationVariant:
    def test_counts_match_evaluation_cardinality(self, skewed_graph_db):
        query = path_query(3)
        decomposition = generic_decompose(query)
        count = CachedLeapfrogTrieJoin(query, skewed_graph_db, decomposition).count()
        rows = list(CachedLeapfrogTrieJoin(query, skewed_graph_db, decomposition).evaluate())
        assert count == len(rows)
        assert len(rows) == len(set(rows))

    def test_never_cache_evaluation_matches_lftj(self, small_graph_db):
        query = cycle_query(4)
        decomposition = generic_decompose(query)
        order = strongly_compatible_order(decomposition)
        clftj_rows = set(
            CachedLeapfrogTrieJoin(
                query, small_graph_db, decomposition, order, policy=NeverCachePolicy()
            ).evaluate()
        )
        lftj_rows = set(LeapfrogTrieJoin(query, small_graph_db, order).evaluate())
        assert clftj_rows == lftj_rows

    def test_evaluation_with_bounded_cache(self, skewed_graph_db):
        query = path_query(3)
        decomposition = generic_decompose(query)
        expected = brute_force_evaluate(query, skewed_graph_db)
        joiner = CachedLeapfrogTrieJoin(
            query, skewed_graph_db, decomposition,
            cache=AdhesionCache(capacity=4, eviction="lru"),
        )
        produced = {
            tuple(row[variable] for variable in query.variables)
            for row in joiner.evaluate_all()
        }
        assert produced == expected


class TestValidation:
    def test_incompatible_order_rejected(self, small_graph_db):
        query = path_query(3)
        decomposition = generic_decompose(query)
        order = strongly_compatible_order(decomposition)
        bad_order = tuple(reversed(order))
        with pytest.raises(ValueError):
            CachedLeapfrogTrieJoin(query, small_graph_db, decomposition, bad_order)

    def test_decomposition_must_match_query(self, small_graph_db):
        query = path_query(3)
        other = generic_decompose(path_query(4))
        with pytest.raises(ValueError):
            CachedLeapfrogTrieJoin(query, small_graph_db, other)

    def test_ownerless_bags_are_contracted(self, small_graph_db):
        query = path_query(2)
        # Node 1's bag is contained in the root bag, so it owns nothing.
        decomposition = TreeDecomposition(
            [["x1", "x2", "x3"], ["x2", "x3"]], [None, 0]
        )
        joiner = CachedLeapfrogTrieJoin(query, small_graph_db, decomposition)
        assert joiner.decomposition.num_nodes == 1
        assert joiner.count() == brute_force_count(query, small_graph_db)
