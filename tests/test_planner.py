"""Tests for the planner and execution plans."""

import pytest

from repro.core.cache import AlwaysCachePolicy, NeverCachePolicy, SupportThresholdPolicy
from repro.decomposition.generic import generic_decompose
from repro.decomposition.ordering import is_strongly_compatible
from repro.engine.planner import ExecutionPlan, Planner
from repro.query.patterns import clique_query, cycle_query, path_query


class TestPlanner:
    def test_plan_produces_strongly_compatible_order(self, skewed_graph_db):
        planner = Planner(skewed_graph_db)
        plan = planner.plan(cycle_query(5))
        assert is_strongly_compatible(
            plan.decomposition.contract_ownerless_bags(), plan.variable_order
        )

    def test_plan_validates_against_query(self, skewed_graph_db):
        planner = Planner(skewed_graph_db)
        plan = planner.plan(path_query(5))
        plan.decomposition.validate(path_query(5))

    def test_plan_uses_provided_decomposition(self, skewed_graph_db):
        planner = Planner(skewed_graph_db)
        query = path_query(4)
        decomposition = generic_decompose(query)
        plan = planner.plan(query, decomposition=decomposition)
        assert plan.decomposition is decomposition

    def test_plan_default_policy_is_always(self, skewed_graph_db):
        plan = Planner(skewed_graph_db).plan(path_query(3))
        assert isinstance(plan.policy, AlwaysCachePolicy)

    def test_support_threshold_policy_injected(self, skewed_graph_db):
        planner = Planner(skewed_graph_db, support_threshold=2)
        plan = planner.plan(path_query(3))
        assert isinstance(plan.policy, SupportThresholdPolicy)

    def test_explicit_policy_wins(self, skewed_graph_db):
        planner = Planner(skewed_graph_db, support_threshold=2)
        plan = planner.plan(path_query(3), policy=NeverCachePolicy())
        assert isinstance(plan.policy, NeverCachePolicy)

    def test_clique_plan_falls_back_to_singleton(self, skewed_graph_db):
        plan = Planner(skewed_graph_db).plan(clique_query(3))
        assert plan.decomposition.num_nodes == 1


class TestExecutionPlan:
    def test_make_cache_unbounded_by_default(self, skewed_graph_db):
        plan = Planner(skewed_graph_db).plan(path_query(3))
        cache = plan.make_cache()
        assert cache.capacity is None

    def test_make_cache_respects_capacity(self, skewed_graph_db):
        plan = Planner(skewed_graph_db).plan(path_query(3), cache_capacity=7)
        cache = plan.make_cache()
        assert cache.capacity == 7
        assert cache.eviction == "lru"

    def test_describe_mentions_order_and_bags(self, skewed_graph_db):
        plan = Planner(skewed_graph_db).plan(cycle_query(4), cache_capacity=5)
        description = plan.describe()
        assert "variable order" in description
        assert "bags" in description
        assert "cache capacity: 5" in description
