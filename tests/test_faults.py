"""Chaos suite: fault injection, worker recovery, deadlines, memory budgets.

Four suites over the fault-tolerance machinery of :mod:`repro.engine.faults`:

* **Recovery** — a SIGKILLed fork worker mid-job no longer fails the query:
  the pool re-forks, re-enqueues the unacked morsels and the merged row
  stream stays byte-identical to the serial oracle, with the restarts and
  retries surfaced in the result metadata.  A poison-pill morsel (kills its
  worker on every retry) exhausts the bounded budget and surfaces as a typed
  :class:`WorkerFailureError` — after which the pool is immediately
  reusable.
* **Deadlines** — ``timeout=`` raises :class:`QueryTimeoutError` on the
  interpreted, compiled, thread-pool and fork-pool paths; the pool stays
  reusable right after a timeout; validation errors are ``ValueError``.
* **Degradation** — an over-budget database degrades in the documented
  order (adhesion caching off -> caches evicted -> serial) instead of
  crashing, recorded in ``metadata["degradations"]`` and ``explain()``.
* **Harness** — the :func:`inject_faults` context manager itself: trigger
  windows, hit/fire counters, unknown actions, disarming on exit.

Every test is deterministic: faults trigger on counted occurrences, never
wall-clock races.
"""

import time

import pytest

from repro.core.instrumentation import OperationCounter
from repro.engine import QueryEngine
from repro.engine.faults import (
    Deadline,
    FaultInjectedError,
    FaultSpec,
    QueryTimeoutError,
    WorkerFailureError,
    fault_point,
    inject_faults,
)
from repro.engine.pool import ForkWorkerPool, MorselJob, MorselTask, TaskOutcome
from repro.query.patterns import cycle_query, path_query
from repro.storage.database import Database
from repro.storage.relation import Relation

from tests.conftest import random_edge_database


def _edge_database(name="faults", nodes=40, edges=260, seed=7):
    base = random_edge_database(num_nodes=nodes, num_edges=edges, seed=seed)
    return Database(list(base), name=name)


# Module-level runners: the fork backend pickles them by reference.
def _ok_runner(database, spec, task):
    return TaskOutcome(value=1, rows=None, counter=OperationCounter())


def _tasks(count):
    return [MorselTask(index, (), None, None) for index in range(count)]


# ---------------------------------------------------------------------------
# Recovery: killed fork workers are re-forked, morsels retried, rows exact.
# ---------------------------------------------------------------------------


class TestWorkerRecovery:
    def test_killed_fork_worker_is_invisible_to_results(self):
        """The acceptance bar: SIGKILL a worker mid-job, get the exact
        serial row stream back plus restart/retry counters."""
        database = _edge_database(name="faults-kill")
        engine = QueryEngine(database)
        query = cycle_query(3)
        serial = engine.evaluate(query, algorithm="clftj")
        # Arm before the pool forks so the workers inherit the registry.
        with inject_faults(
            {"pool.before_morsel": {"action": "kill", "after": 2, "times": 1}}
        ) as armed:
            result = engine.evaluate(
                query, algorithm="pclftj", parallel=2,
                parallel_backend="processes",
            )
        assert armed["pool.before_morsel"].fired == 1
        assert result.rows == serial.rows  # byte-identical merge
        assert result.count == serial.count
        assert result.metadata["worker_restarts"] >= 1
        assert result.metadata["morsel_retries"] >= 1
        # The pool is warm and healthy for the next query.
        again = engine.evaluate(
            query, algorithm="pclftj", parallel=2, parallel_backend="processes"
        )
        assert again.rows == serial.rows
        assert again.metadata["worker_restarts"] == 0
        database.close_pools()

    def test_poison_pill_exhausts_budget_with_typed_error(self):
        """A morsel that kills every worker it lands on must stop after the
        bounded retry budget, not re-fork forever."""
        database = _edge_database(name="faults-poison", nodes=12, edges=30)
        pool = ForkWorkerPool(database, 2)
        with inject_faults(
            {"pool.before_morsel": {"action": "kill", "times": 1_000_000}}
        ):
            with pytest.raises(WorkerFailureError) as info:
                pool.run(
                    MorselJob(spec=None, runner=_ok_runner, tasks=_tasks(2),
                              max_retries=1)
                )
        assert "died mid-job" in str(info.value)
        assert info.value.diagnostics  # per-worker post-mortem attached
        # The pool recovers for the next (fault-free) job.
        report = pool.run(MorselJob(spec=None, runner=_ok_runner, tasks=_tasks(3)))
        assert sum(result.value for result in report.results) == 3
        pool.close()

    def test_thread_backend_retries_injected_exceptions(self):
        """Injected morsel exceptions on the thread backend are retried
        within the same budget and counted in the metadata."""
        database = _edge_database(name="faults-retry")
        engine = QueryEngine(database)
        query = path_query(3)
        serial = engine.evaluate(query, algorithm="lftj")
        with inject_faults(
            {"pool.before_morsel": {"action": "raise", "after": 1, "times": 2}}
        ) as armed:
            result = engine.evaluate(
                query, algorithm="lftj", parallel=2, parallel_backend="threads"
            )
        assert armed["pool.before_morsel"].fired == 2
        assert result.rows == serial.rows
        assert result.metadata["morsel_retries"] >= 2
        database.close_pools()

    def test_worker_start_fault_is_survivable(self):
        """A fault at pool.worker_start (one worker dies while spawning)
        still completes the job through the surviving + re-forked workers."""
        database = _edge_database(name="faults-start", nodes=20, edges=80)
        engine = QueryEngine(database)
        query = cycle_query(3)
        serial = engine.count(query, algorithm="lftj").count
        with inject_faults(
            {"pool.worker_start": {"action": "kill", "times": 1}}
        ):
            result = engine.count(
                query, algorithm="lftj", parallel=2,
                parallel_backend="processes",
            )
        assert result.count == serial
        database.close_pools()


# ---------------------------------------------------------------------------
# Deadlines and cancellation.
# ---------------------------------------------------------------------------


class TestDeadlines:
    @pytest.fixture()
    def database(self):
        database = _edge_database(name="faults-deadline")
        yield database
        database.close_pools()

    def test_interpreted_timeout_raises_typed_error(self, database):
        engine = QueryEngine(database)
        with pytest.raises(QueryTimeoutError) as info:
            engine.count(cycle_query(3), algorithm="lftj", compile=False,
                         timeout=1e-9)
        assert info.value.timeout == 1e-9

    def test_compiled_timeout_raises_typed_error(self, database):
        engine = QueryEngine(database)
        with pytest.raises(QueryTimeoutError):
            engine.count(cycle_query(3), algorithm="clftj", timeout=1e-9)

    @pytest.mark.parametrize("backend", ("threads", "processes"))
    def test_pool_timeout_leaves_pool_reusable(self, database, backend):
        engine = QueryEngine(database)
        query = cycle_query(3)
        serial = engine.count(query, algorithm="lftj").count
        with pytest.raises(QueryTimeoutError):
            engine.count(query, algorithm="plftj", parallel=2,
                         parallel_backend=backend, timeout=1e-9)
        # The pool was cancelled, not poisoned: immediately reusable.
        result = engine.count(query, algorithm="plftj", parallel=2,
                              parallel_backend=backend)
        assert result.count == serial

    def test_generous_timeout_completes_and_is_recorded(self, database):
        engine = QueryEngine(database)
        result = engine.count(cycle_query(3), algorithm="clftj", timeout=60.0)
        assert result.metadata["timeout"] == 60.0

    @pytest.mark.parametrize("bad", (0, -1, "soon"))
    def test_invalid_timeouts_are_value_errors(self, database, bad):
        engine = QueryEngine(database)
        with pytest.raises(ValueError, match="timeout"):
            engine.count(cycle_query(3), algorithm="lftj", timeout=bad)

    def test_non_deadline_algorithms_reject_timeout(self, database):
        engine = QueryEngine(database)
        with pytest.raises(ValueError, match="timeout"):
            engine.count(cycle_query(3), algorithm="ytd", timeout=5.0)

    def test_deadline_object_semantics(self):
        deadline = Deadline.start(60.0)
        assert not deadline.expired()
        assert 0 < deadline.remaining() <= 60.0
        deadline.check()  # not expired: no raise
        expired = Deadline(timeout=1e-9, at=time.monotonic() - 1.0)
        assert expired.expired() and expired.remaining() == 0.0
        with pytest.raises(QueryTimeoutError):
            expired.check()


# ---------------------------------------------------------------------------
# Memory-budget degradation.
# ---------------------------------------------------------------------------


class TestMemoryBudget:
    def _database(self, budget):
        base = random_edge_database(num_nodes=30, num_edges=140, seed=9)
        return Database(list(base), name="faults-budget",
                        memory_budget_bytes=budget)

    def test_over_budget_degrades_in_documented_order_not_crash(self):
        database = self._database(budget=1)
        engine = QueryEngine(database)
        query = cycle_query(3)
        serial_count = None
        result = engine.count(query, algorithm="pclftj", parallel=2)
        serial_count = QueryEngine(self._database(budget=None)).count(
            query, algorithm="clftj"
        ).count
        assert result.count == serial_count  # degraded, still correct
        degradations = result.metadata["degradations"]
        assert len(degradations) == 3
        assert "adhesion caching disabled" in degradations[0]
        assert "evicted compiled drivers" in degradations[1]
        assert "restricted to one worker" in degradations[2]
        database.close_pools()

    def test_within_budget_runs_undegraded(self):
        database = self._database(budget=1 << 30)
        result = QueryEngine(database).count(cycle_query(3), algorithm="clftj")
        assert "degradations" not in result.metadata
        database.close_pools()

    def test_explain_reports_budget_and_footprint(self):
        database = self._database(budget=1)
        text = QueryEngine(database).explain(cycle_query(3), algorithm="clftj")
        line = next(l for l in text.splitlines() if l.startswith("memory budget"))
        assert "over budget" in line and "degrade in order" in line

    def test_footprint_grows_with_cached_state(self):
        database = self._database(budget=None)
        before = database.memory_footprint()
        QueryEngine(database).count(cycle_query(3), algorithm="clftj")
        assert database.memory_footprint() > before  # indexes + driver cached
        database.close_pools()

    @pytest.mark.parametrize("bad", (0, -5))
    def test_constructor_rejects_non_positive_budget(self, bad):
        with pytest.raises(ValueError, match="memory budget"):
            Database(
                [Relation("E", ("s", "t"), [(1, 2)])],
                memory_budget_bytes=bad,
            )


# ---------------------------------------------------------------------------
# The injection harness itself.
# ---------------------------------------------------------------------------


class TestInjectionHarness:
    def test_unarmed_fault_points_are_noops(self):
        fault_point("pool.before_morsel")  # must not raise

    def test_trigger_window_counts_occurrences(self):
        with inject_faults(
            {"pool.heartbeat": {"action": "raise", "after": 2, "times": 1}}
        ) as armed:
            fault_point("pool.heartbeat")
            fault_point("pool.heartbeat")
            with pytest.raises(FaultInjectedError):
                fault_point("pool.heartbeat")
            fault_point("pool.heartbeat")  # window exhausted
            assert armed["pool.heartbeat"].hits == 4
            assert armed["pool.heartbeat"].fired == 1
        fault_point("pool.heartbeat")  # disarmed on exit

    def test_delay_action_sleeps(self):
        with inject_faults(
            {"pool.heartbeat": {"action": "delay", "delay": 0.02}}
        ):
            start = time.monotonic()
            fault_point("pool.heartbeat")
            assert time.monotonic() - start >= 0.02

    def test_kill_action_never_fires_in_arming_process(self):
        with inject_faults({"pool.heartbeat": "kill"}) as armed:
            fault_point("pool.heartbeat")  # would SIGKILL a fork worker
            assert armed["pool.heartbeat"].fired == 1  # counted, not fatal

    def test_bare_string_and_spec_forms(self):
        with inject_faults({"compiler.exec": FaultSpec(action="raise")}):
            with pytest.raises(FaultInjectedError):
                fault_point("compiler.exec")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec(action="explode")

    def test_compiler_exec_fault_falls_back_to_interpreted(self):
        """A fault while compiling must not fail the query: the executor
        records the failure and runs the interpreted loop instead."""
        database = _edge_database(name="faults-compile", nodes=20, edges=80)
        engine = QueryEngine(database)
        query = cycle_query(3)
        oracle = engine.count(query, algorithm="lftj", compile=False).count
        database.clear_compiled_cache()
        with inject_faults({"compiler.exec": {"action": "raise", "times": 8}}):
            result = engine.count(query, algorithm="lftj")
        assert result.count == oracle
        assert result.metadata["compiled"] is False
        assert result.metadata["compiled_reason"].startswith("compile failed")
        database.close_pools()
