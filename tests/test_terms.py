"""Tests for variables, constants and term coercion."""

import pytest

from repro.query.terms import Constant, Variable, as_term, is_constant, is_variable


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")

    def test_inequality_for_different_names(self):
        assert Variable("x") != Variable("y")

    def test_hashable_and_usable_in_sets(self):
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_ordering_is_by_name(self):
        assert Variable("a") < Variable("b")

    def test_str_is_the_name(self):
        assert str(Variable("x3")) == "x3"

    def test_repr_round_trips_the_name(self):
        assert "x3" in repr(Variable("x3"))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_is_immutable(self):
        variable = Variable("x")
        with pytest.raises(AttributeError):
            variable.name = "y"


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(5) == Constant(5)

    def test_inequality(self):
        assert Constant(5) != Constant(6)

    def test_hashable(self):
        assert len({Constant(1), Constant(1), Constant("1")}) == 2

    def test_string_constant_str(self):
        assert str(Constant("abc")) == "'abc'"

    def test_variable_and_constant_never_equal(self):
        assert Variable("x") != Constant("x")


class TestAsTerm:
    def test_string_becomes_variable(self):
        assert as_term("x") == Variable("x")

    def test_int_becomes_constant(self):
        assert as_term(7) == Constant(7)

    def test_existing_variable_passes_through(self):
        variable = Variable("v")
        assert as_term(variable) is variable

    def test_existing_constant_passes_through(self):
        constant = Constant(3)
        assert as_term(constant) is constant

    def test_predicates(self):
        assert is_variable(Variable("x"))
        assert not is_variable(Constant(1))
        assert is_constant(Constant(1))
        assert not is_constant("x")
