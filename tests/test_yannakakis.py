"""Tests for the YTD baseline (Yannakakis over a tree decomposition)."""

import pytest

from repro.baselines.yannakakis import YannakakisTreeJoin, ytd_count
from repro.core.instrumentation import OperationCounter
from repro.decomposition.generic import generic_decompose
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.query.parser import parse_query
from repro.query.patterns import cycle_query, lollipop_query, path_query, star_query

from tests.conftest import brute_force_count, brute_force_evaluate


class TestCounts:
    @pytest.mark.parametrize("query_factory", [
        lambda: path_query(3),
        lambda: path_query(5),
        lambda: cycle_query(4),
        lambda: cycle_query(5),
        lambda: star_query(3),
        lambda: lollipop_query(3, 2),
    ])
    def test_matches_brute_force(self, small_graph_db, query_factory):
        query = query_factory()
        decomposition = generic_decompose(query)
        assert YannakakisTreeJoin(query, small_graph_db, decomposition).count() == (
            brute_force_count(query, small_graph_db)
        )

    def test_skewed_data(self, skewed_graph_db):
        query = path_query(4)
        decomposition = generic_decompose(query)
        assert YannakakisTreeJoin(query, skewed_graph_db, decomposition).count() == (
            brute_force_count(query, skewed_graph_db)
        )

    def test_singleton_decomposition(self, small_graph_db):
        query = cycle_query(3)
        decomposition = TreeDecomposition.singleton(query.variables)
        assert YannakakisTreeJoin(query, small_graph_db, decomposition).count() == (
            brute_force_count(query, small_graph_db)
        )

    def test_multi_relation_query(self, two_relation_db):
        query = parse_query("R(x, y), S(y, z), R(z, w)")
        decomposition = generic_decompose(query)
        assert YannakakisTreeJoin(query, two_relation_db, decomposition).count() == (
            brute_force_count(query, two_relation_db)
        )

    def test_manual_decomposition(self, small_graph_db):
        query = path_query(4)
        decomposition = TreeDecomposition.path(
            [["x1", "x2"], ["x2", "x3"], ["x3", "x4"], ["x4", "x5"]]
        )
        assert YannakakisTreeJoin(query, small_graph_db, decomposition).count() == (
            brute_force_count(query, small_graph_db)
        )

    def test_convenience_wrapper(self, small_graph_db):
        query = path_query(3)
        decomposition = generic_decompose(query)
        assert ytd_count(query, small_graph_db, decomposition) == brute_force_count(
            query, small_graph_db
        )

    def test_empty_result(self, small_graph_db):
        query = parse_query("E(x, y), E(y, x), E(x, 99999)")
        decomposition = generic_decompose(query)
        assert YannakakisTreeJoin(query, small_graph_db, decomposition).count() == 0


class TestEvaluation:
    def test_assignments_match_brute_force(self, small_graph_db):
        query = path_query(3)
        decomposition = generic_decompose(query)
        joiner = YannakakisTreeJoin(query, small_graph_db, decomposition)
        produced = {
            tuple(row[variable] for variable in query.variables)
            for row in joiner.evaluate()
        }
        assert produced == brute_force_evaluate(query, small_graph_db)

    def test_evaluate_tuples_helper(self, small_graph_db):
        query = cycle_query(4)
        decomposition = generic_decompose(query)
        rows = YannakakisTreeJoin(query, small_graph_db, decomposition).evaluate_tuples()
        assert set(rows) == brute_force_evaluate(query, small_graph_db)

    def test_count_equals_evaluation_cardinality(self, small_graph_db):
        query = cycle_query(4)
        decomposition = generic_decompose(query)
        count = YannakakisTreeJoin(query, small_graph_db, decomposition).count()
        rows = YannakakisTreeJoin(query, small_graph_db, decomposition).evaluate_tuples()
        assert count == len(set(rows)) == len(rows)


class TestBehaviour:
    def test_bag_sizes_reported(self, small_graph_db):
        query = path_query(4)
        decomposition = generic_decompose(query)
        joiner = YannakakisTreeJoin(query, small_graph_db, decomposition)
        joiner.count()
        sizes = joiner.bag_sizes()
        assert sizes
        assert all(size >= 0 for size in sizes.values())

    def test_materialisation_is_counted(self, small_graph_db):
        counter = OperationCounter()
        query = path_query(4)
        decomposition = generic_decompose(query)
        YannakakisTreeJoin(query, small_graph_db, decomposition, counter).count()
        assert counter.tuples_materialized > 0
        assert counter.hash_probes > 0

    def test_ytd_materialises_more_than_clftj(self, skewed_graph_db):
        """The paper's point: YTD always materialises full bag relations."""
        from repro.core.clftj import CachedLeapfrogTrieJoin

        query = path_query(4)
        decomposition = generic_decompose(query)
        ytd_counter = OperationCounter()
        YannakakisTreeJoin(query, skewed_graph_db, decomposition, ytd_counter).count()
        clftj_counter = OperationCounter()
        CachedLeapfrogTrieJoin(
            query, skewed_graph_db, decomposition, counter=clftj_counter
        ).count()
        assert ytd_counter.tuples_materialized > clftj_counter.tuples_materialized

    def test_invalid_decomposition_rejected(self, small_graph_db):
        query = path_query(3)
        wrong = generic_decompose(path_query(4))
        with pytest.raises(ValueError):
            YannakakisTreeJoin(query, small_graph_db, wrong)
