"""Tests for the pairwise hash-join baseline (the PostgreSQL proxy)."""

import pytest

from repro.baselines.binary_join import PairwiseHashJoin, pairwise_count
from repro.core.instrumentation import OperationCounter
from repro.query.parser import parse_query
from repro.query.patterns import clique_query, cycle_query, path_query, star_query

from tests.conftest import brute_force_count, brute_force_evaluate


class TestCounts:
    @pytest.mark.parametrize("query_factory", [
        lambda: path_query(2),
        lambda: path_query(4),
        lambda: cycle_query(3),
        lambda: cycle_query(5),
        lambda: star_query(3),
        lambda: clique_query(3),
    ])
    def test_matches_brute_force(self, small_graph_db, query_factory):
        query = query_factory()
        assert PairwiseHashJoin(query, small_graph_db).count() == brute_force_count(
            query, small_graph_db
        )

    def test_multi_relation(self, two_relation_db):
        query = parse_query("R(x, y), S(y, z), R(z, w)")
        assert PairwiseHashJoin(query, two_relation_db).count() == brute_force_count(
            query, two_relation_db
        )

    def test_query_with_constant(self, small_graph_db):
        query = parse_query("E(x, y), E(y, 5)")
        assert PairwiseHashJoin(query, small_graph_db).count() == brute_force_count(
            query, small_graph_db
        )

    def test_convenience_wrapper(self, small_graph_db):
        query = path_query(3)
        assert pairwise_count(query, small_graph_db) == brute_force_count(
            query, small_graph_db
        )


class TestEvaluation:
    def test_assignments_match_brute_force(self, small_graph_db):
        query = path_query(3)
        joiner = PairwiseHashJoin(query, small_graph_db)
        produced = {
            tuple(row[variable] for variable in query.variables)
            for row in joiner.evaluate()
        }
        assert produced == brute_force_evaluate(query, small_graph_db)

    def test_evaluate_tuples(self, small_graph_db):
        query = cycle_query(4)
        rows = PairwiseHashJoin(query, small_graph_db).evaluate_tuples()
        assert set(rows) == brute_force_evaluate(query, small_graph_db)
        assert len(rows) == len(set(rows))


class TestPlanning:
    def test_plan_covers_all_atoms(self, small_graph_db):
        query = cycle_query(5)
        plan = PairwiseHashJoin(query, small_graph_db).plan()
        assert sorted(plan) == list(range(len(query.atoms)))

    def test_plan_starts_with_smallest_relation(self, two_relation_db):
        query = parse_query("R(x, y), S(y, z)")
        joiner = PairwiseHashJoin(query, two_relation_db)
        plan = joiner.plan()
        sizes = [len(two_relation_db.relation(query.atoms[i].relation)) for i in plan]
        assert sizes[0] == min(sizes)

    def test_connected_atoms_preferred(self, small_graph_db):
        # A path query's plan should join adjacent atoms, never a cross product,
        # so each prefix of the plan shares a variable with the next atom.
        query = path_query(5)
        plan = PairwiseHashJoin(query, small_graph_db).plan()
        bound = set(query.atoms[plan[0]].variable_set())
        for index in plan[1:]:
            atom_vars = query.atoms[index].variable_set()
            assert bound & atom_vars
            bound |= atom_vars

    def test_materialisation_counted(self, small_graph_db):
        counter = OperationCounter()
        PairwiseHashJoin(path_query(4), small_graph_db, counter).count()
        assert counter.tuples_materialized > 0
        assert counter.hash_probes > 0
