"""Shared fixtures and reference implementations for the test suite."""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

import pytest

from repro.query.atoms import ConjunctiveQuery
from repro.query.terms import Constant, Variable
from repro.storage.database import Database
from repro.storage.relation import Relation


def brute_force_evaluate(query: ConjunctiveQuery, database: Database) -> Set[Tuple[object, ...]]:
    """A tiny, obviously-correct nested-loop join used as the oracle in tests.

    Returns the set of result tuples ordered by ``query.variables``.
    """
    assignments: List[Dict[str, object]] = [dict()]
    for atom in query.atoms:
        relation = database.relation(atom.relation)
        extended: List[Dict[str, object]] = []
        for assignment in assignments:
            for row in relation.tuples:
                candidate = dict(assignment)
                consistent = True
                for term, value in zip(atom.terms, row):
                    if isinstance(term, Constant):
                        if term.value != value:
                            consistent = False
                            break
                        continue
                    name = term.name
                    if name in candidate and candidate[name] != value:
                        consistent = False
                        break
                    candidate[name] = value
                if consistent:
                    extended.append(candidate)
        assignments = extended
    return {
        tuple(assignment[variable.name] for variable in query.variables)
        for assignment in assignments
    }


def brute_force_count(query: ConjunctiveQuery, database: Database) -> int:
    """Count of :func:`brute_force_evaluate`."""
    return len(brute_force_evaluate(query, database))


def random_edge_database(
    num_nodes: int = 20,
    num_edges: int = 60,
    seed: int = 0,
    relation_name: str = "E",
) -> Database:
    """A small random directed graph database used across tests."""
    rng = random.Random(seed)
    edges = set()
    attempts = 0
    while len(edges) < num_edges and attempts < num_edges * 50:
        attempts += 1
        source, target = rng.randint(1, num_nodes), rng.randint(1, num_nodes)
        if source != target:
            edges.add((source, target))
    relation = Relation(relation_name, ("src", "dst"), edges)
    return Database([relation], name=f"random-{seed}")


def skewed_edge_database(
    num_nodes: int = 25,
    num_edges: int = 90,
    seed: int = 3,
) -> Database:
    """A skewed graph: a few hub nodes carry most edges (cache-friendly)."""
    rng = random.Random(seed)
    hubs = list(range(1, 4))
    edges = set()
    attempts = 0
    while len(edges) < num_edges and attempts < num_edges * 60:
        attempts += 1
        if rng.random() < 0.7:
            source = rng.choice(hubs)
        else:
            source = rng.randint(1, num_nodes)
        target = rng.randint(1, num_nodes)
        if source != target:
            edges.add((source, target))
    relation = Relation("E", ("src", "dst"), edges)
    return Database([relation], name="skewed")


@pytest.fixture
def tiny_db() -> Database:
    """The four-fact example database of the paper's Example 3.1."""
    relation = Relation("R", ("a", "b"), [(1, 1), (1, 2), (2, 1), (2, 2)])
    return Database([relation], name="example-3.1")


@pytest.fixture
def small_graph_db() -> Database:
    """A deterministic 20-node / 60-edge random graph."""
    return random_edge_database()


@pytest.fixture
def skewed_graph_db() -> Database:
    """A deterministic skewed graph with hub nodes."""
    return skewed_edge_database()


@pytest.fixture
def two_relation_db() -> Database:
    """Two binary relations sharing a value domain (for multi-relation queries)."""
    rng = random.Random(9)
    rows_r = {(rng.randint(1, 12), rng.randint(1, 12)) for _ in range(40)}
    rows_s = {(rng.randint(1, 12), rng.randint(1, 12)) for _ in range(40)}
    return Database(
        [
            Relation("R", ("a", "b"), [row for row in rows_r if row[0] != row[1]]),
            Relation("S", ("a", "b"), [row for row in rows_s if row[0] != row[1]]),
        ],
        name="two-relations",
    )
