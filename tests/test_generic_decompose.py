"""Tests for GenericDecompose / RecursiveTD and the TD enumerator."""

import pytest

from repro.decomposition.generic import (
    GenericDecomposer,
    enumerate_tree_decompositions,
    generic_decompose,
)
from repro.decomposition.ordering import strongly_compatible_order, is_strongly_compatible
from repro.query.parser import parse_query
from repro.query.patterns import (
    clique_query,
    cycle_query,
    lollipop_query,
    path_query,
    random_pattern_query,
    star_query,
)


class TestGenericDecompose:
    @pytest.mark.parametrize("query_factory", [
        lambda: path_query(4),
        lambda: path_query(7),
        lambda: cycle_query(4),
        lambda: cycle_query(6),
        lambda: lollipop_query(3, 2),
        lambda: star_query(4),
        lambda: random_pattern_query(6, 0.5, seed=2),
    ])
    def test_produces_valid_decompositions(self, query_factory):
        query = query_factory()
        decomposition = generic_decompose(query)
        decomposition.validate(query)

    def test_path_decomposition_has_unit_adhesions(self):
        decomposition = generic_decompose(path_query(6))
        assert decomposition.max_adhesion_size == 1
        assert decomposition.num_nodes >= 2

    def test_cycle_decomposition_has_two_node_adhesions(self):
        decomposition = generic_decompose(cycle_query(6))
        assert decomposition.max_adhesion_size == 2
        assert decomposition.num_nodes >= 2

    def test_triangle_gives_singleton(self):
        decomposition = generic_decompose(cycle_query(3))
        assert decomposition.num_nodes == 1

    def test_clique_gives_singleton(self):
        decomposition = generic_decompose(clique_query(4))
        assert decomposition.num_nodes == 1

    def test_lollipop_keeps_triangle_in_one_bag(self):
        query = lollipop_query(3, 2)
        decomposition = generic_decompose(query)
        decomposition.validate(query)
        triangle_vars = {f"x{i}" for i in (1, 2, 3)}
        assert any(
            triangle_vars <= {v.name for v in decomposition.bag(node)}
            for node in decomposition.preorder()
        )

    def test_max_adhesion_bound_respected(self):
        decomposition = generic_decompose(cycle_query(6), max_adhesion_size=2)
        assert decomposition.max_adhesion_size <= 2

    def test_derived_order_is_strongly_compatible(self):
        for query in (path_query(5), cycle_query(5), lollipop_query()):
            decomposition = generic_decompose(query)
            order = strongly_compatible_order(decomposition)
            assert is_strongly_compatible(decomposition, order)

    def test_decompose_graph_directly(self):
        import networkx as nx

        graph = nx.relabel_nodes(nx.path_graph(6), {node: f"v{node}" for node in range(6)})
        decomposer = GenericDecomposer()
        decomposition = decomposer.decompose_graph(graph)
        assert decomposition.num_nodes >= 2

    def test_invalid_adhesion_size_rejected(self):
        with pytest.raises(ValueError):
            GenericDecomposer(max_adhesion_size=0)


class TestEnumeration:
    def test_yields_multiple_distinct_decompositions(self):
        decompositions = list(
            enumerate_tree_decompositions(path_query(5), max_decompositions=8)
        )
        assert len(decompositions) >= 2
        assert len({d.canonical_form() for d in decompositions}) == len(decompositions)

    def test_all_enumerated_are_valid(self):
        query = cycle_query(5)
        for decomposition in enumerate_tree_decompositions(query, max_decompositions=6):
            decomposition.validate(query)

    def test_respects_max_decompositions(self):
        decompositions = list(
            enumerate_tree_decompositions(path_query(6), max_decompositions=3)
        )
        assert len(decompositions) <= 3

    def test_clique_falls_back_to_singleton(self):
        decompositions = list(enumerate_tree_decompositions(clique_query(4)))
        assert len(decompositions) == 1
        assert decompositions[0].num_nodes == 1

    def test_enumerated_decompositions_have_small_adhesions(self):
        for decomposition in enumerate_tree_decompositions(
            cycle_query(6), max_adhesion_size=2, max_decompositions=5
        ):
            assert decomposition.max_adhesion_size <= 2

    def test_multi_relation_query(self):
        query = parse_query("R(a, b), S(b, c), R(c, d), S(d, e)")
        decompositions = list(enumerate_tree_decompositions(query, max_decompositions=4))
        assert decompositions
        for decomposition in decompositions:
            decomposition.validate(query)
