"""Tests for the unary leapfrog intersection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.leapfrog import LeapfrogJoin, leapfrog_intersection
from repro.storage.trie import TrieIndex


def _open_iterator(values):
    trie = TrieIndex.from_tuples([(value,) for value in values])
    iterator = trie.iterator()
    iterator.open()
    return iterator


class TestLeapfrogJoin:
    def test_two_way_intersection(self):
        left = _open_iterator([1, 3, 5, 7])
        right = _open_iterator([2, 3, 5, 8])
        assert list(LeapfrogJoin([left, right])) == [3, 5]

    def test_three_way_intersection(self):
        iterators = [
            _open_iterator([1, 2, 3, 4, 5]),
            _open_iterator([2, 3, 5, 9]),
            _open_iterator([3, 5, 7]),
        ]
        assert list(LeapfrogJoin(iterators)) == [3, 5]

    def test_single_iterator_passthrough(self):
        iterator = _open_iterator([4, 6, 8])
        assert list(LeapfrogJoin([iterator])) == [4, 6, 8]

    def test_empty_intersection(self):
        join = LeapfrogJoin([_open_iterator([1, 2]), _open_iterator([3, 4])])
        assert join.at_end

    def test_empty_iterator_short_circuits(self):
        trie = TrieIndex.from_tuples([(1,)])
        iterator = trie.iterator()
        iterator.open()
        iterator.seek(10)  # exhaust it
        join = LeapfrogJoin([iterator, _open_iterator([1, 2, 3])])
        assert join.at_end

    def test_key_raises_at_end(self):
        join = LeapfrogJoin([_open_iterator([1]), _open_iterator([2])])
        with pytest.raises(RuntimeError):
            join.key()

    def test_next_raises_at_end(self):
        join = LeapfrogJoin([_open_iterator([1]), _open_iterator([2])])
        with pytest.raises(RuntimeError):
            join.next()

    def test_seek_skips_forward(self):
        join = LeapfrogJoin([_open_iterator([1, 4, 6, 9]), _open_iterator([1, 4, 6, 9])])
        join.seek(5)
        assert join.key() == 6

    def test_no_iterators_rejected(self):
        with pytest.raises(ValueError):
            LeapfrogJoin([])

    def test_helper_function(self):
        assert leapfrog_intersection(
            [_open_iterator([1, 2, 3]), _open_iterator([2, 3, 4])]
        ) == [2, 3]


@given(
    st.lists(st.sets(st.integers(min_value=0, max_value=50), min_size=1, max_size=30),
             min_size=1, max_size=4)
)
@settings(max_examples=80, deadline=None)
def test_leapfrog_matches_set_intersection(value_sets):
    iterators = [_open_iterator(sorted(values)) for values in value_sets]
    expected = sorted(set.intersection(*[set(values) for values in value_sets]))
    assert list(LeapfrogJoin(iterators)) == expected
