"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main, resolve_dataset, resolve_query
from repro.query.parser import QueryParseError


class TestResolveQuery:
    def test_path_spec(self):
        assert resolve_query("4-path").name == "4-path"

    def test_cycle_spec(self):
        assert resolve_query("5-cycle").name == "5-cycle"

    def test_clique_and_star(self):
        assert len(resolve_query("4-clique")) == 6
        assert len(resolve_query("3-star")) == 3

    def test_random_spec_with_probability(self):
        query = resolve_query("5-rand(0.6)")
        assert "5-rand" in query.name

    def test_lollipop(self):
        assert resolve_query("lollipop").name == "{3,2}-lollipop"

    def test_imdb_cycles(self):
        assert len(resolve_query("imdb-4-cycle")) == 4
        assert len(resolve_query("imdb-6-cycle")) == 6

    def test_datalog_body(self):
        query = resolve_query("E(x,y), E(y,z)")
        assert len(query) == 2

    def test_garbage_rejected(self):
        with pytest.raises(QueryParseError):
            resolve_query("17-nonsense&&&")


class TestResolveDataset:
    def test_snap_standin(self):
        database = resolve_dataset("wiki-Vote", scale=0.3)
        assert "E" in database

    def test_imdb(self):
        database = resolve_dataset("imdb", scale=0.3)
        assert "male_cast" in database

    def test_edge_list_path(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("1 2\n2 3\n")
        database = resolve_dataset(str(path), scale=1.0)
        assert len(database.relation("E")) == 2


class TestCommands:
    def test_run_count(self, capsys):
        code = main(["run", "--dataset", "wiki-Vote", "--query", "3-cycle",
                     "--scale", "0.3", "--algorithm", "clftj"])
        assert code == 0
        output = capsys.readouterr().out
        assert "clftj" in output
        assert "3-cycle" in output

    def test_run_evaluate_with_rows(self, capsys):
        code = main(["run", "--dataset", "wiki-Vote", "--query", "2-path",
                     "--scale", "0.3", "--mode", "evaluate", "--show-rows", "2"])
        assert code == 0
        assert "first 2 rows" in capsys.readouterr().out

    def test_run_with_cache_capacity(self, capsys):
        code = main(["run", "--dataset", "wiki-Vote", "--query", "4-path",
                     "--scale", "0.3", "--cache-capacity", "10"])
        assert code == 0

    def test_compare(self, capsys):
        code = main(["compare", "--dataset", "wiki-Vote", "--query", "3-path",
                     "--scale", "0.3", "--algorithms", "lftj", "clftj"])
        assert code == 0
        output = capsys.readouterr().out
        assert "lftj" in output and "clftj" in output

    def test_plan(self, capsys):
        code = main(["plan", "--dataset", "wiki-Vote", "--query", "5-cycle",
                     "--scale", "0.3"])
        assert code == 0
        assert "variable order" in capsys.readouterr().out

    def test_run_auto_reports_selection(self, capsys):
        code = main(["run", "--dataset", "wiki-Vote", "--query", "5-cycle",
                     "--scale", "0.3", "--algorithm", "auto"])
        assert code == 0
        assert "auto selected:" in capsys.readouterr().out

    def test_run_repeat_reports_cache_counters(self, capsys):
        code = main(["run", "--dataset", "wiki-Vote", "--query", "4-cycle",
                     "--scale", "0.3", "--repeat", "3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "plan_cache_hits=" in output
        assert "index_builds=0" in output

    def test_run_mutate_streams_updates(self, capsys):
        code = main(["run", "--dataset", "wiki-Vote", "--query", "3-cycle",
                     "--scale", "0.3", "--repeat", "3", "--mutate", "4"])
        assert code == 0
        output = capsys.readouterr().out
        assert output.count("mutated E: +4 rows") == 2
        assert "index_patches=" in output
        assert "rebuilds_after_updates=0" in output

    def test_explain_auto(self, capsys):
        code = main(["explain", "--dataset", "wiki-Vote", "--query", "5-cycle",
                     "--scale", "0.3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "selected algorithm" in output
        assert "plan cache" in output
        assert "index cache" in output

    def test_explain_explicit_algorithm(self, capsys):
        code = main(["explain", "--dataset", "wiki-Vote", "--query", "4-cycle",
                     "--scale", "0.3", "--algorithm", "clftj"])
        assert code == 0
        assert "algorithm: clftj (explicit)" in capsys.readouterr().out

    def test_unused_parameter_is_a_clean_error(self, capsys):
        code = main(["run", "--dataset", "wiki-Vote", "--query", "3-path",
                     "--scale", "0.3", "--algorithm", "lftj", "--cache-capacity", "5"])
        assert code == 2
        assert "does not use" in capsys.readouterr().err

    def test_datasets_listing(self, capsys):
        code = main(["datasets"])
        assert code == 0
        output = capsys.readouterr().out
        assert "wiki-Vote" in output
        assert "imdb" in output

    def test_parser_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_algorithm_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--dataset", "wiki-Vote", "--query", "3-path", "--algorithm", "magic"]
            )
