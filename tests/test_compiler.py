"""Tests for the plan -> compile -> execute split (repro.engine.compiler).

The compiled driver must be invisible except for speed: identical counts,
identical row streams, identical instrumentation counters.  These tests pin
the cache-and-invalidation contract (version-keyed drivers dropped on
replacement, delta updates and compaction), the two-phase build protocol,
the metadata/explain reporting, the interpreted escape hatch and the CLI
surface.
"""

import random
import subprocess
import sys

import pytest

from repro.cli import main
from repro.core.instrumentation import OperationCounter
from repro.core.lftj import LeapfrogTrieJoin
from repro.engine import QueryEngine
from repro.engine.compiler import (
    COMPILED_ALGORITHMS,
    CompiledTrieJoin,
    driver_cache_key,
)
from repro.query.parser import parse_query
from repro.query.patterns import clique_query, cycle_query, path_query
from repro.storage.database import Database
from repro.storage.relation import Relation


def _edges(seed=11, nodes=50, count=320):
    rng = random.Random(seed)
    return sorted({(rng.randrange(nodes), rng.randrange(nodes)) for _ in range(count)})


@pytest.fixture
def database():
    return Database([Relation("E", ("a", "b"), _edges())])


@pytest.fixture
def engine(database):
    return QueryEngine(database)


QUERIES = [
    cycle_query(3),
    clique_query(4),
    path_query(3),
    parse_query("E(x, y), E(y, x)"),
]


class TestParity:
    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
    def test_count_and_counters_match_interpreted(self, database, query):
        compiled_counter, interpreted_counter = OperationCounter(), OperationCounter()
        compiled = CompiledTrieJoin(query, database, counter=compiled_counter)
        interpreted = LeapfrogTrieJoin(query, database, counter=interpreted_counter)
        assert compiled.count() == interpreted.count()
        assert compiled_counter.as_dict() == interpreted_counter.as_dict()

    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
    def test_evaluate_rows_match_interpreted_ordered(self, database, query):
        compiled_counter, interpreted_counter = OperationCounter(), OperationCounter()
        compiled = list(
            CompiledTrieJoin(query, database, counter=compiled_counter).evaluate()
        )
        interpreted = list(
            LeapfrogTrieJoin(query, database, counter=interpreted_counter).evaluate()
        )
        assert compiled == interpreted  # ordered, byte-identical
        assert compiled_counter.as_dict() == interpreted_counter.as_dict()

    def test_engine_compiled_vs_oracle_flag(self, engine):
        query = cycle_query(3)
        compiled = engine.count(query, algorithm="lftj")
        oracle = engine.count(query, algorithm="lftj", compile=False)
        assert compiled.count == oracle.count
        assert compiled.metadata["compiled"] is True
        assert "compiled" not in oracle.metadata
        assert compiled.counter.as_dict() == oracle.counter.as_dict()

    def test_parallel_shards_share_one_driver(self, engine, database):
        query = cycle_query(3)
        serial = engine.count(query, algorithm="lftj", compile=False)
        result = engine.count(query, algorithm="plftj", parallel=4,
                              parallel_backend="threads")
        assert result.count == serial.count
        # One compilation serves every shard (plus the template executor).
        assert result.metadata["compiled_builds"] == 1
        assert database.compiled_cache_size() == 1


class TestCacheAndInvalidation:
    def test_cache_hit_on_second_execution(self, engine):
        query = cycle_query(3)
        first = engine.count(query, algorithm="lftj")
        second = engine.count(query, algorithm="lftj")
        assert first.metadata["compiled_builds"] == 1
        assert first.metadata["compiled_cache_hits"] == 0
        assert second.metadata["compiled_builds"] == 0
        assert second.metadata["compiled_cache_hits"] == 1

    def test_same_shape_queries_share_a_driver(self, engine, database):
        engine.count(cycle_query(3), algorithm="lftj")
        engine.count(parse_query("E(a, b), E(b, c), E(c, a)"), algorithm="lftj")
        assert database.compiled_builds == 1
        assert database.compiled_cache_hits == 1

    def test_replacement_invalidates_driver(self, engine, database):
        query = cycle_query(3)
        engine.count(query, algorithm="lftj")
        assert database.compiled_cache_size() == 1
        database.add_relation(
            Relation("E", ("a", "b"), _edges(seed=99)), replace=True
        )
        assert database.compiled_cache_size() == 0
        rebuilt = engine.count(query, algorithm="lftj")
        assert rebuilt.metadata["compiled_builds"] == 1
        oracle = engine.count(query, algorithm="lftj", compile=False)
        assert rebuilt.count == oracle.count

    def test_delta_update_invalidates_then_fallback_then_recompile(self):
        # Small relations auto-compact after every batch (the compaction
        # floor), which would merge the deltas before the compiler ever saw
        # them; disable that to pin the deltas-pending fallback.
        database = Database(
            [Relation("E", ("a", "b"), _edges())],
            compaction_floor=0,
            compaction_threshold=1000.0,
        )
        engine = QueryEngine(database)
        query = cycle_query(3)
        engine.count(query, algorithm="lftj")
        database.insert("E", [(997, 998), (998, 999), (999, 997)])
        # The driver captured the pre-insert arrays: it must be gone.
        assert database.compiled_cache_size() == 0
        # With deltas pending the compiler stands down; the interpreted
        # fallback still answers correctly.
        pending = engine.count(query, algorithm="lftj")
        assert pending.metadata["compiled"] is False
        assert "delta" in pending.metadata["compiled_reason"]
        oracle = engine.count(query, algorithm="lftj", compile=False)
        assert pending.count == oracle.count
        # Compaction folds the deltas; the next run compiles again.
        database.compact()
        recompiled = engine.count(query, algorithm="lftj")
        assert recompiled.metadata["compiled"] is True
        assert recompiled.metadata["compiled_builds"] == 1
        assert recompiled.count == oracle.count

    def test_compaction_drops_version_keyed_driver(self, engine, database):
        # A driver compiled while another relation's deltas are compacted
        # must not survive compaction of its *own* relation: compaction
        # swaps the backing arrays without a version bump.
        query = cycle_query(3)
        engine.count(query, algorithm="lftj")
        order = tuple(query.variables)
        key = driver_cache_key(query, order)
        driver = database.peek_compiled_driver(key)
        assert driver is not None
        assert driver.relation_versions == database.relation_versions(
            query.relation_names
        )
        database.insert("E", [(500, 501)])
        database.compact()
        assert database.peek_compiled_driver(key) is None
        # Recompiled driver records the bumped version.
        engine.count(query, algorithm="lftj")
        fresh = database.peek_compiled_driver(key)
        assert fresh is not None and fresh is not driver
        assert fresh.relation_versions == database.relation_versions(
            query.relation_names
        )
        assert fresh.relation_versions != driver.relation_versions

    def test_raw_storage_falls_back_interpreted(self):
        raw = Database([Relation("E", ("a", "b"), _edges())], encode=False)
        engine = QueryEngine(raw)
        result = engine.count(cycle_query(3), algorithm="lftj")
        assert result.metadata["compiled"] is False
        assert "raw storage" in result.metadata["compiled_reason"]
        assert result.metadata["compiled_builds"] == 0

    def test_disable_encoding_clears_compiled_cache(self, engine, database):
        engine.count(cycle_query(3), algorithm="lftj")
        assert database.compiled_cache_size() == 1
        database.disable_encoding()
        assert database.compiled_cache_size() == 0


class TestPrepared:
    def test_prepared_holds_and_refreshes_compiled_handle(self, engine, database):
        query = cycle_query(3)
        prepared = engine.prepare(query, algorithm="lftj")
        assert prepared.compiled_driver() is None  # nothing compiled yet
        first = prepared.count()
        assert first.metadata["compiled_builds"] == 1
        driver = prepared.compiled_driver()
        assert driver is not None
        assert driver.matches(database)
        # Version bump: handle sees the invalidation, next run recompiles.
        database.insert("E", [(900, 901)])
        assert prepared.compiled_driver() is None
        database.compact()
        again = prepared.count()
        assert again.metadata["compiled_builds"] == 1
        assert prepared.compiled_driver() is not driver
        assert again.count == engine.count(
            query, algorithm="lftj", compile=False
        ).count

    def test_prepared_compile_false_never_compiles(self, engine, database):
        prepared = engine.prepare(cycle_query(3), algorithm="lftj", compile=False)
        prepared.count()
        assert prepared.compiled_driver() is None
        assert database.compiled_builds == 0


class TestReporting:
    def test_debug_source_exposes_both_modes(self, database):
        executor = CompiledTrieJoin(cycle_query(3), database)
        executor.build()
        count_source = executor.debug_source("count")
        evaluate_source = executor.debug_source("evaluate")
        assert "def _count" in count_source
        assert "def _evaluate" in evaluate_source
        assert "yield" in evaluate_source and "yield" not in count_source
        with pytest.raises(ValueError):
            executor.debug_source("nonsense")

    def test_explain_reports_compiled_state_transitions(self, engine):
        query = cycle_query(3)
        cold = engine.explain(query, algorithm="lftj")
        assert "compiled drivers:" in cold
        assert "will compile on first execution" in cold
        engine.count(query, algorithm="lftj")
        warm = engine.explain(query, algorithm="lftj")
        assert "this query: cached" in warm
        disabled = engine.explain(query, algorithm="lftj", compile=False)
        assert "disabled (compile=False" in disabled
        other = engine.explain(query, algorithm="clftj")
        assert "will compile on first execution (count mode)" in other
        engine.count(query, algorithm="clftj")
        other_warm = engine.explain(query, algorithm="clftj")
        assert "cached (count mode; evaluation runs interpreted)" in other_warm
        interpreted = engine.explain(query, algorithm="ytd")
        assert "not applicable" in interpreted

    def test_metadata_counters_always_present(self, engine):
        result = engine.count(cycle_query(3), algorithm="pairwise")
        assert result.metadata["compiled_builds"] == 0
        assert result.metadata["compiled_cache_hits"] == 0

    def test_selector_reasons_mention_compiled_state(self, engine):
        query = cycle_query(3)
        cold = engine.explain(query, algorithm="auto")
        assert "driver compilation" in cold or "already compiled" in cold
        engine.count(query, algorithm="lftj")
        warm = engine.explain(query, algorithm="auto")
        assert "already compiled and cached" in warm


class TestValidation:
    def test_compile_rejected_for_non_compiled_algorithms(self, engine):
        for algorithm in ("ytd", "pairwise", "generic_join"):
            assert algorithm not in COMPILED_ALGORITHMS
            with pytest.raises(ValueError, match="compile"):
                engine.count(cycle_query(3), algorithm=algorithm, compile=False)

    def test_auto_rejects_explicit_compile(self, engine):
        with pytest.raises(ValueError):
            engine.count(cycle_query(3), algorithm="auto", compile=False)

    def test_cli_no_compile_runs_interpreted(self, capsys):
        code = main(["run", "--dataset", "wiki-Vote", "--query", "3-cycle",
                     "--algorithm", "lftj", "--no-compile"])
        assert code == 0
        assert "3-cycle" in capsys.readouterr().out

    def test_cli_no_compile_invalid_combo_exits_2(self, capsys):
        code = main(["run", "--dataset", "wiki-Vote", "--query", "3-cycle",
                     "--algorithm", "ytd", "--no-compile"])
        assert code == 2
        assert "compile" in capsys.readouterr().err

    def test_cli_no_compile_valid_for_clftj(self, capsys):
        code = main(["run", "--dataset", "wiki-Vote", "--query", "3-cycle",
                     "--algorithm", "clftj", "--no-compile"])
        assert code == 0

    def test_cli_explain_reports_disabled_state(self, capsys):
        code = main(["explain", "--dataset", "wiki-Vote", "--query", "3-cycle",
                     "--algorithm", "lftj", "--no-compile"])
        assert code == 0
        assert "disabled (compile=False" in capsys.readouterr().out


class TestKernelCrossover:
    def test_env_override_changes_crossover_and_driver_records_it(self):
        script = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.core import leapfrog\n"
            "assert leapfrog.KERNEL_CROSSOVER == 7, leapfrog.KERNEL_CROSSOVER\n"
            "import random\n"
            "from repro.engine.compiler import CompiledTrieJoin\n"
            "from repro.query.patterns import cycle_query\n"
            "from repro.storage.database import Database\n"
            "from repro.storage.relation import Relation\n"
            "rng = random.Random(3)\n"
            "rows = sorted({(rng.randrange(40), rng.randrange(40))"
            " for _ in range(260)})\n"
            "db = Database([Relation('E', ('a', 'b'), rows)])\n"
            "executor = CompiledTrieJoin(cycle_query(3), db)\n"
            "assert executor.build().crossover == 7\n"
            "print(executor.count())\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"REPRO_KERNEL_CROSSOVER": "7", "PATH": "/usr/bin:/bin"},
            cwd=".",
        )
        assert proc.returncode == 0, proc.stderr
        assert int(proc.stdout.strip()) >= 0


class TestClftjCompiled:
    """The CLFTJ codegen tier: probe inlining, parity, invalidation."""

    def test_driver_emits_inlined_cache_probes(self, engine, database):
        query = path_query(4)  # multi-bag: probed nodes exist
        result = engine.count(query, algorithm="clftj")
        assert result.metadata["compiled"] is True
        prepared = engine.prepare(query, algorithm="clftj")
        driver = prepared.compiled_driver()
        assert driver is not None
        assert driver.probed_nodes  # at least one adhesion-cache probe
        source = driver.debug_source("count")
        assert "adhesion-cache probe" in source
        assert "_cget(" in source and "_cput(" in source
        # No generic dispatch survives specialization: the adhesion keys are
        # straight-line tuple constructions over bound depth locals.
        assert "_adhesion_depths" not in source
        database.close_pools()

    def test_count_counters_and_cache_hits_match_interpreted(self, engine):
        for query in (path_query(4), clique_query(4), cycle_query(3)):
            compiled = engine.count(query, algorithm="clftj")
            interpreted = engine.count(query, algorithm="clftj", compile=False)
            assert compiled.count == interpreted.count
            assert compiled.counter.as_dict() == interpreted.counter.as_dict()
            assert compiled.counter.cache_hits == interpreted.counter.cache_hits

    def test_mutation_invalidates_clftj_driver(self, engine, database):
        query = path_query(4)
        engine.count(query, algorithm="clftj")
        assert database.compiled_cache_size() == 1
        database.add_relation(
            Relation("E", ("a", "b"), _edges(seed=99)), replace=True
        )
        assert database.compiled_cache_size() == 0
        rebuilt = engine.count(query, algorithm="clftj")
        assert rebuilt.metadata["compiled_builds"] == 1
        oracle = engine.count(query, algorithm="clftj", compile=False)
        assert rebuilt.count == oracle.count

    def test_delta_pending_falls_back_interpreted_then_recompiles(self):
        database = Database(
            [Relation("E", ("a", "b"), _edges())],
            compaction_floor=0,
            compaction_threshold=1000.0,
        )
        engine = QueryEngine(database)
        query = path_query(4)
        first = engine.count(query, algorithm="clftj")
        assert first.metadata["compiled"] is True
        database.insert("E", [(997, 998), (998, 999), (999, 997)])
        assert database.compiled_cache_size() == 0
        pending = engine.count(query, algorithm="clftj")
        assert pending.metadata["compiled"] is False
        assert "delta" in pending.metadata["compiled_reason"]
        oracle = engine.count(query, algorithm="clftj", compile=False)
        assert pending.count == oracle.count
        database.compact("E")
        recompiled = engine.count(query, algorithm="clftj")
        assert recompiled.metadata["compiled"] is True
        assert recompiled.count == oracle.count

    def test_unroll_ceiling_falls_back_interpreted(self, engine, monkeypatch):
        import repro.engine.compiler as compiler_module

        monkeypatch.setattr(compiler_module, "MAX_UNROLLED_CACHE_NODES", 0)
        query = path_query(4)
        result = engine.count(query, algorithm="clftj")
        assert result.metadata["compiled"] is False
        assert "unroll ceiling" in result.metadata["compiled_reason"]
        oracle = engine.count(query, algorithm="clftj", compile=False)
        assert result.count == oracle.count

    def test_evaluation_runs_interpreted_with_warm_compiled_count(self, engine):
        query = path_query(4)
        engine.count(query, algorithm="clftj")
        result = engine.evaluate(query, algorithm="clftj")
        assert result.metadata["compiled"] is False
        assert "factorized" in result.metadata["compiled_reason"]
        oracle = engine.evaluate(query, algorithm="clftj", compile=False)
        assert result.rows == oracle.rows
