"""Update semantics: delta storage, LSM tries, selective cache invalidation.

Covers the PR-3 mutable storage layer end to end:

* ``Database.insert`` / ``delete`` effective-delta semantics and versioning;
* the main+delta :class:`~repro.storage.trie.LsmTrieIndex` and its merging
  iterator (ordering/seek invariants, tombstones, resurrection, compaction
  equivalence);
* visibility of updates through all five registered algorithms, including a
  seeded property-style sweep against freshly-built databases;
* prepared-query warm adhesion caches surviving updates to relations their
  decomposition bags do not read;
* incremental statistics refresh.
"""

from __future__ import annotations

import random

import pytest

from repro.core.cache import affected_cache_nodes
from repro.engine.engine import QueryEngine
from repro.query.parser import parse_query
from repro.query.patterns import cycle_query
from repro.storage.database import Database
from repro.storage.relation import DeltaBatch, Relation, VersionedRelation
from repro.storage.statistics import StatisticsCatalog
from repro.storage.trie import LsmTrieIndex, MergedTrieIterator, TrieIndex
from repro.storage.views import signature_view_rows

from tests.conftest import brute_force_count, random_edge_database

ALGORITHMS = ("lftj", "clftj", "ytd", "generic_join", "pairwise")


def lazy_database(*relations, **kwargs) -> Database:
    """A database that never auto-compacts: merged-trie reads stay live."""
    kwargs.setdefault("compaction_floor", 0)
    kwargs.setdefault("compaction_threshold", 1e9)
    return Database(relations, **kwargs)


def walk_rows(index) -> list:
    """Enumerate all tuples through the iterator protocol (full DFS)."""
    iterator = index.iterator()
    rows = []

    def descend(prefix):
        iterator.open()
        while not iterator.at_end():
            key = iterator.key()
            if len(prefix) + 1 == index.depth:
                rows.append(prefix + (key,))
            else:
                descend(prefix + (key,))
            iterator.next()
        iterator.up()

    descend(())
    return rows


class TestDatabaseUpdates:
    def test_insert_returns_effective_count(self):
        db = lazy_database(Relation("E", ("a", "b"), [(1, 2), (2, 3)]))
        assert db.insert("E", [(3, 4), (1, 2), (3, 4)]) == 1
        assert db.relation("E").tuples == ((1, 2), (2, 3), (3, 4))

    def test_delete_returns_effective_count(self):
        db = lazy_database(Relation("E", ("a", "b"), [(1, 2), (2, 3)]))
        assert db.delete("E", [(1, 2), (9, 9)]) == 1
        assert db.relation("E").tuples == ((2, 3),)

    def test_noop_batch_does_not_bump_version(self):
        db = lazy_database(Relation("E", ("a", "b"), [(1, 2)]))
        version = db.relation_version("E")
        assert db.insert("E", [(1, 2)]) == 0
        assert db.delete("E", [(7, 7)]) == 0
        assert db.relation_version("E") == version

    def test_versions_survive_replacement(self):
        db = Database([Relation("E", ("a", "b"), [(1, 2)])])
        db.insert("E", [(2, 3)])
        before = db.relation_version("E")
        db.add_relation(Relation("E", ("a", "b"), [(5, 6)]), replace=True)
        assert db.relation_version("E") == before + 1

    def test_arity_mismatch_rejected(self):
        db = lazy_database(Relation("E", ("a", "b"), [(1, 2)]))
        with pytest.raises(ValueError):
            db.insert("E", [(1, 2, 3)])

    def test_unknown_relation_raises(self):
        db = lazy_database(Relation("E", ("a", "b"), [(1, 2)]))
        with pytest.raises(KeyError):
            db.insert("missing", [(1, 2)])

    def test_updates_patch_cached_tries_in_place(self):
        db = lazy_database(Relation("E", ("a", "b"), [(1, 2), (2, 3)]))
        trie = db.trie_index("E", (0, 1))
        builds = db.index_builds
        db.insert("E", [(3, 1)])
        assert db.trie_index("E", (0, 1)) is trie
        assert db.index_builds == builds
        assert db.index_patches == 1
        assert sorted(trie.iter_rows()) == [(1, 2), (2, 3), (3, 1)]

    def test_updates_keep_plans_replacement_drops_them(self):
        db = Database([Relation("E", ("src", "dst"), [(1, 2), (2, 3), (3, 1)])])
        engine = QueryEngine(db)
        query = cycle_query(3)
        engine.plan(query)
        assert db.plan_cache_size() == 1
        db.insert("E", [(1, 3)])
        assert db.plan_cache_size() == 1, "delta updates must keep plans"
        db.add_relation(Relation("E", ("src", "dst"), [(4, 5)]), replace=True)
        assert db.plan_cache_size() == 0

    def test_eager_compaction_below_floor(self):
        db = Database([Relation("E", ("a", "b"), [(1, 2), (2, 3)])],
                      compaction_floor=1000)
        trie = db.trie_index("E", (0, 1))
        db.insert("E", [(5, 6)])
        assert not trie.has_deltas, "small indexes fold deltas immediately"
        assert db.index_compactions >= 1

    def test_explicit_compact_folds_everything(self):
        db = lazy_database(Relation("E", ("a", "b"), [(1, 2), (2, 3)]))
        trie = db.trie_index("E", (0, 1))
        db.insert("E", [(4, 5)])
        db.delete("E", [(1, 2)])
        assert trie.has_deltas
        folded = db.compact("E")
        assert folded == 2
        assert not trie.has_deltas
        assert db.relation("E").tuples == ((2, 3), (4, 5))


class TestVersionedRelation:
    def test_snapshot_merges_sorted(self):
        wrapper = VersionedRelation(Relation("E", ("a", "b"), [(2, 2), (5, 5)]))
        wrapper.apply(1, inserts=[(1, 1), (9, 9)], deletes=[(5, 5)])
        assert wrapper.snapshot().tuples == ((1, 1), (2, 2), (9, 9))

    def test_delete_then_reinsert_in_one_batch_is_noop(self):
        wrapper = VersionedRelation(Relation("E", ("a", "b"), [(1, 1)]))
        batch = wrapper.apply(1, inserts=[(1, 1)], deletes=[(1, 1)])
        assert batch.is_empty
        assert wrapper.snapshot().tuples == ((1, 1),)

    def test_deltas_since_returns_applied_batches(self):
        wrapper = VersionedRelation(Relation("E", ("a", "b"), []), created_version=1)
        wrapper.apply(2, inserts=[(1, 1)])
        wrapper.apply(3, inserts=[(2, 2)])
        batches = wrapper.deltas_since(2)
        assert [batch.version for batch in batches] == [3]
        assert wrapper.deltas_since(0) is None, "predates the wrapper"

    def test_deltas_since_after_replacement_forces_recompute(self):
        db = Database([Relation("E", ("a", "b"), [(1, 2)])])
        db.add_relation(Relation("E", ("a", "b"), [(3, 4)]), replace=True)
        assert db.deltas_since("E", 1) is None

    def test_compact_preserves_log(self):
        wrapper = VersionedRelation(Relation("E", ("a", "b"), [(1, 1)]), created_version=1)
        wrapper.apply(2, inserts=[(2, 2)])
        wrapper.compact()
        assert wrapper.delta_size == 0
        assert [batch.version for batch in wrapper.deltas_since(1)] == [2]


class TestLsmTrie:
    def build(self, rows):
        return LsmTrieIndex(TrieIndex.from_tuples(rows, name="T"))

    def test_iterator_is_plain_without_deltas(self):
        index = self.build([(1, 2)])
        assert not isinstance(index.iterator(), MergedTrieIterator)
        index.apply_delta(inserted=[(3, 4)])
        assert isinstance(index.iterator(), MergedTrieIterator)

    def test_merged_enumeration_is_sorted_union(self):
        index = self.build([(1, 2), (1, 4), (3, 1)])
        index.apply_delta(inserted=[(0, 9), (1, 3), (3, 0), (4, 4)], deleted=[(1, 4)])
        expected = [(0, 9), (1, 2), (1, 3), (3, 0), (3, 1), (4, 4)]
        assert walk_rows(index) == expected
        assert list(index.iter_rows()) == expected
        assert index.tuple_count() == len(expected)

    def test_seek_lands_on_least_key_geq(self):
        index = self.build([(1, 2), (3, 1), (7, 7)])
        index.apply_delta(inserted=[(5, 5)], deleted=[(3, 1)])
        # level-0 keys are now [1, 5, 7]
        iterator = index.iterator()
        iterator.open()
        iterator.seek(2)
        assert iterator.key() == 5
        iterator.seek(5)
        assert iterator.key() == 5, "seek never moves backwards past a match"
        iterator.seek(6)
        assert iterator.key() == 7
        iterator.seek(100)
        assert iterator.at_end()

    def test_tombstone_suppresses_fully_deleted_prefix(self):
        index = self.build([(1, 2), (1, 3), (2, 5)])
        index.apply_delta(deleted=[(1, 2), (1, 3)])
        assert walk_rows(index) == [(2, 5)]
        iterator = index.iterator()
        iterator.open()
        assert iterator.key() == 2, "key 1 has no live tuples left"

    def test_partial_tombstone_keeps_prefix(self):
        index = self.build([(1, 2), (1, 3)])
        index.apply_delta(deleted=[(1, 2)])
        assert walk_rows(index) == [(1, 3)]

    def test_delta_insert_shields_tombstoned_prefix(self):
        index = self.build([(1, 2)])
        index.apply_delta(inserted=[(1, 9)], deleted=[(1, 2)])
        assert walk_rows(index) == [(1, 9)]

    def test_reinsert_resurrects_tombstoned_tuple(self):
        index = self.build([(1, 2)])
        index.apply_delta(deleted=[(1, 2)])
        assert walk_rows(index) == []
        index.apply_delta(inserted=[(1, 2)])
        assert walk_rows(index) == [(1, 2)]
        assert not index.has_deltas, "resurrection cancels the tombstone"

    def test_delete_of_pending_insert_retracts_it(self):
        index = self.build([(1, 2)])
        index.apply_delta(inserted=[(5, 5)])
        index.apply_delta(deleted=[(5, 5)])
        assert walk_rows(index) == [(1, 2)]
        assert not index.has_deltas

    def test_contains_reflects_deltas(self):
        index = self.build([(1, 2), (3, 4)])
        index.apply_delta(inserted=[(9, 9)], deleted=[(3, 4)])
        assert index.contains((1, 2))
        assert index.contains((9, 9))
        assert not index.contains((3, 4))

    def test_compaction_equivalence(self):
        rng = random.Random(42)
        rows = {(rng.randint(0, 9), rng.randint(0, 9), rng.randint(0, 9))
                for _ in range(60)}
        index = LsmTrieIndex(TrieIndex.from_tuples(sorted(rows), name="T"))
        inserted = {(rng.randint(0, 9), rng.randint(0, 9), rng.randint(0, 9))
                    for _ in range(25)} - rows
        deleted = set(rng.sample(sorted(rows), 20))
        index.apply_delta(inserted=inserted, deleted=deleted)
        final = sorted((rows | inserted) - deleted)
        assert list(index.iter_rows()) == final
        index.compact()
        rebuilt = TrieIndex.from_tuples(final, name="T")
        assert list(index.main.iter_rows()) == list(rebuilt.iter_rows())
        assert index.main.level_sizes() == rebuilt.level_sizes()
        assert not index.has_deltas
        assert walk_rows(index) == final

    def test_merged_iterator_guard_rails(self):
        index = self.build([(1, 2)])
        index.apply_delta(inserted=[(3, 4)])
        iterator = index.iterator()
        with pytest.raises(RuntimeError):
            iterator.key()
        with pytest.raises(RuntimeError):
            iterator.up()
        iterator.open()
        iterator.open()
        with pytest.raises(RuntimeError):
            iterator.open()  # past the last level

    def test_merged_iterator_reports_operations(self):
        from repro.core.instrumentation import OperationCounter

        index = self.build([(1, 2), (5, 6)])
        index.apply_delta(inserted=[(3, 4)])
        counter = OperationCounter()
        iterator = index.iterator(counter)
        iterator.open()
        while not iterator.at_end():
            iterator.next()
        assert counter.trie_opens == 1
        assert counter.trie_nexts == 3
        assert counter.memory_accesses > 0


class TestSignatureViewRows:
    def test_identity_signature_passes_rows_through(self):
        assert signature_view_rows((0, 1), [(1, 2), (3, 4)]) == [(1, 2), (3, 4)]

    def test_repeated_variable_filters_and_projects(self):
        assert signature_view_rows((0, 0), [(1, 1), (1, 2), (3, 3)]) == [(1,), (3,)]

    def test_constant_marker_selects(self):
        signature = (0, ("c", 3), 1)
        rows = [(1, 3, 2), (1, 4, 2), (5, 3, 6)]
        assert signature_view_rows(signature, rows) == [(1, 2), (5, 6)]


class TestUpdateVisibility:
    """Inserts/deletes must be visible through every registered algorithm."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("eager", [False, True], ids=["merged", "compacted"])
    def test_triangle_counts_after_updates(self, algorithm, eager):
        base = random_edge_database(num_nodes=12, num_edges=40, seed=5)
        edges = set(base.relation("E").tuples)
        relation = Relation("E", ("src", "dst"), edges)
        db = Database([relation]) if eager else lazy_database(relation)
        engine = QueryEngine(db)
        query = cycle_query(3)
        engine.count(query, algorithm=algorithm)  # warm the caches
        rng = random.Random(11)
        inserts = {(rng.randint(1, 12), rng.randint(1, 12)) for _ in range(15)}
        inserts = {edge for edge in inserts if edge[0] != edge[1]}
        deletes = set(rng.sample(sorted(edges), 10))
        db.insert("E", inserts)
        db.delete("E", deletes)
        fresh = Database([Relation("E", ("src", "dst"), (edges | inserts) - deletes)])
        expected = brute_force_count(query, fresh)
        assert engine.count(query, algorithm=algorithm).count == expected
        assert (
            sorted(r for r in engine.evaluate(query, algorithm=algorithm).rows)
            == sorted(r for r in QueryEngine(fresh).evaluate(query, algorithm=algorithm).rows)
        )

    @pytest.mark.parametrize("eager", [False, True], ids=["merged", "compacted"])
    def test_property_random_update_sequences(self, eager):
        """Property-style: any seeded insert/delete sequence ends equal to a
        freshly built database with the final tuples, for every algorithm."""
        query = parse_query("E(x, y), E(y, z), E(z, x)")
        for seed in (1, 2, 3):
            rng = random.Random(seed)
            edges = {(rng.randint(1, 10), rng.randint(1, 10)) for _ in range(30)}
            edges = {edge for edge in edges if edge[0] != edge[1]}
            factory = (lambda rel: Database([rel])) if eager else (
                lambda rel: lazy_database(rel)
            )
            db = factory(Relation("E", ("src", "dst"), edges))
            engine = QueryEngine(db)
            current = set(edges)
            for _ in range(4):
                inserts = {(rng.randint(1, 10), rng.randint(1, 10)) for _ in range(6)}
                inserts = {edge for edge in inserts if edge[0] != edge[1]}
                deletes = set(rng.sample(sorted(current), min(4, len(current))))
                db.insert("E", inserts)
                db.delete("E", deletes)
                current = (current | inserts) - deletes
                fresh = Database([Relation("E", ("src", "dst"), current)])
                expected = brute_force_count(query, fresh)
                counts = {
                    algorithm: engine.count(query, algorithm=algorithm).count
                    for algorithm in ALGORITHMS
                }
                assert set(counts.values()) == {expected}, (seed, counts, expected)
                assert db.relation("E").tuples == fresh.relation("E").tuples


class TestPreparedCacheSurvival:
    def make_db(self, seed=9):
        rng = random.Random(seed)
        rows_r = {(rng.randint(1, 10), rng.randint(1, 10)) for _ in range(45)}
        rows_s = {(rng.randint(1, 10), rng.randint(1, 10)) for _ in range(45)}
        rows_t = {(rng.randint(1, 10), rng.randint(1, 10)) for _ in range(10)}
        return Database([
            Relation("R", ("a", "b"), rows_r),
            Relation("S", ("b", "c"), rows_s),
            Relation("T", ("x", "y"), rows_t),
        ])

    def test_unrelated_relation_update_keeps_caches_warm(self):
        db = self.make_db()
        engine = QueryEngine(db)
        prepared = engine.prepare(parse_query("R(x, y), S(y, z)"), algorithm="clftj")
        prepared.count()
        warm = prepared.count()
        assert warm.counter.cache_hits > 0, "the handle must be warm"
        db.insert("T", [(100, 200)])
        after = prepared.count()
        assert prepared.cache_invalidations == 0
        assert after.counter.cache_hits == warm.counter.cache_hits

    def test_root_bag_relation_update_keeps_subtree_caches(self):
        db = self.make_db()
        engine = QueryEngine(db)
        prepared = engine.prepare(parse_query("R(x, y), S(y, z)"), algorithm="clftj")
        prepared.count()
        warm = prepared.count()
        decomposition = prepared._cache_decomposition
        # Cache entries only exist for non-root nodes, so a relation whose
        # affected set stays within the root cannot drop any warm entry.
        root_only = {decomposition.root}
        root_relations = {
            atom.relation
            for atom in prepared.query.atoms
            if affected_cache_nodes(decomposition, prepared.query, {atom.relation})
            <= root_only
        }
        if not root_relations:
            pytest.skip("plan put both atoms below the root for this data")
        target = root_relations.pop()
        db.insert(target, [(1, 2)])
        after = prepared.count()
        assert prepared.cache_invalidations == 0, (
            f"update to root-bag relation {target!r} must not drop subtree caches"
        )
        assert after.counter.cache_hits > 0
        # correctness: matches a freshly planned engine on the same data
        assert after.count == QueryEngine(db).count(prepared.query).count

    def test_subtree_relation_update_invalidates_selectively(self):
        db = self.make_db()
        engine = QueryEngine(db)
        prepared = engine.prepare(parse_query("R(x, y), S(y, z)"), algorithm="clftj")
        prepared.count()
        prepared.count()
        inserted = db.insert("S", [(1, 2), (3, 4)])
        after = prepared.count()
        if inserted:
            assert prepared.cache_invalidations > 0
        assert after.count == QueryEngine(db).count(prepared.query).count

    def test_explicit_cache_parameter_is_invalidated_too(self):
        """Regression: a caller-supplied cache= serves hits like the handle's
        own caches, so data changes must invalidate it as well."""
        from repro.core.cache import AdhesionCache

        db = self.make_db()
        engine = QueryEngine(db)
        query = parse_query("R(x, y), S(y, z)")
        prepared = engine.prepare(query, algorithm="clftj", cache=AdhesionCache())
        prepared.count()
        warm = prepared.count()
        assert warm.counter.cache_hits > 0
        db.insert("S", [(1, 2), (2, 5), (3, 7)])
        db.delete("S", [db.relation("S").tuples[0]])
        after = prepared.count()
        assert after.count == QueryEngine(db).count(query).count

    def test_replacement_still_invalidates(self):
        db = self.make_db()
        engine = QueryEngine(db)
        prepared = engine.prepare(parse_query("R(x, y), S(y, z)"), algorithm="clftj")
        prepared.count()
        db.add_relation(Relation("S", ("b", "c"), [(1, 1)]), replace=True)
        after = prepared.count()
        assert after.count == QueryEngine(db).count(prepared.query).count


class TestIncrementalStatistics:
    def test_catalog_notices_replacement(self):
        """Regression: stats must not be served stale after a replacement."""
        db = Database([Relation("E", ("a", "b"), [(1, 2), (1, 3)])])
        catalog = StatisticsCatalog(db)
        assert catalog.relation("E").cardinality == 2
        db.add_relation(
            Relation("E", ("a", "b"), [(1, 2), (2, 3), (3, 4)]), replace=True
        )
        assert catalog.relation("E").cardinality == 3
        assert catalog.full_recomputes == 2

    def test_catalog_refreshes_incrementally_from_deltas(self):
        db = lazy_database(Relation("E", ("a", "b"), [(1, 2), (1, 3), (2, 3)]))
        catalog = StatisticsCatalog(db)
        catalog.relation("E")
        db.insert("E", [(1, 4), (5, 5)])
        db.delete("E", [(2, 3)])
        stats = catalog.relation("E")
        assert catalog.incremental_refreshes == 1
        assert catalog.full_recomputes == 1
        reference = StatisticsCatalog(db).relation("E")
        assert stats.cardinality == reference.cardinality == 4
        for attribute in ("a", "b"):
            assert stats.attribute(attribute) == reference.attribute(attribute)

    def test_auto_selector_uses_fresh_statistics(self):
        """Regression: ``algorithm="auto"`` must re-read statistics after a
        relation is replaced (the catalog used to memoise forever)."""
        db = Database([Relation("E", ("src", "dst"), [(1, 2), (2, 3), (3, 1)])])
        engine = QueryEngine(db)
        query = cycle_query(3)
        engine.count(query, algorithm="auto")
        rng = random.Random(1)
        edges = {(rng.randint(1, 40), rng.randint(1, 40)) for _ in range(300)}
        db.add_relation(Relation("E", ("src", "dst"), edges), replace=True)
        engine.count(query, algorithm="auto")
        stats = engine.selector.catalog.relation("E")
        assert stats.cardinality == len(db.relation("E"))


class TestRelationSatellites:
    def test_hash_is_cached_and_stable(self):
        relation = Relation("E", ("a", "b"), [(1, 2), (3, 4)])
        first = hash(relation)
        assert relation._cached_hash == first
        assert hash(relation) == first
        twin = Relation("E", ("a", "b"), [(3, 4), (1, 2)])
        assert hash(twin) == first

    def test_value_counts_counter(self):
        relation = Relation("E", ("a", "b"), [(1, 2), (1, 3), (2, 3)])
        assert relation.value_counts("a") == {1: 2, 2: 1}
        assert relation.value_counts("b") == {2: 1, 3: 2}


class TestDeltaBatch:
    def test_len_and_empty(self):
        empty = DeltaBatch(version=1, inserted=(), deleted=())
        assert empty.is_empty and len(empty) == 0
        batch = DeltaBatch(version=2, inserted=((1, 2),), deleted=((3, 4),))
        assert not batch.is_empty and len(batch) == 2
