"""Property-based tests: CLFTJ agrees with brute force on random data and queries.

These are the strongest correctness guarantees in the suite: hypothesis
generates random edge sets and random (connected) pattern queries, and for
every enumerated tree decomposition, every caching policy and both execution
modes, CLFTJ must agree with the brute-force oracle and with vanilla LFTJ.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import AdhesionCache, NeverCachePolicy, SupportThresholdPolicy
from repro.core.clftj import CachedLeapfrogTrieJoin
from repro.core.lftj import LeapfrogTrieJoin
from repro.decomposition.generic import enumerate_tree_decompositions, generic_decompose
from repro.query.patterns import cycle_query, graph_pattern_query, path_query
from repro.storage.database import Database
from repro.storage.relation import Relation

from tests.conftest import brute_force_count, brute_force_evaluate

edge_sets = st.sets(
    st.tuples(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8)),
    min_size=1,
    max_size=40,
).map(lambda edges: {(a, b) for a, b in edges if a != b})


def _database(edges) -> Database:
    if not edges:
        edges = {(1, 2)}
    return Database([Relation("E", ("src", "dst"), edges)])


@given(edge_sets, st.integers(min_value=2, max_value=4))
@settings(max_examples=40, deadline=None)
def test_clftj_path_counts_match_brute_force(edges, length):
    database = _database(edges)
    query = path_query(length)
    expected = brute_force_count(query, database)
    decomposition = generic_decompose(query)
    assert CachedLeapfrogTrieJoin(query, database, decomposition).count() == expected
    assert LeapfrogTrieJoin(query, database).count() == expected


@given(edge_sets, st.integers(min_value=3, max_value=5))
@settings(max_examples=30, deadline=None)
def test_clftj_cycle_counts_match_brute_force(edges, length):
    database = _database(edges)
    query = cycle_query(length)
    expected = brute_force_count(query, database)
    decomposition = generic_decompose(query)
    assert CachedLeapfrogTrieJoin(query, database, decomposition).count() == expected


@given(edge_sets)
@settings(max_examples=20, deadline=None)
def test_all_enumerated_decompositions_agree(edges):
    database = _database(edges)
    query = cycle_query(4)
    expected = brute_force_count(query, database)
    for decomposition in enumerate_tree_decompositions(query, max_decompositions=4):
        assert CachedLeapfrogTrieJoin(query, database, decomposition).count() == expected


@given(edge_sets, st.sampled_from(["always", "never", "support", "bounded"]))
@settings(max_examples=30, deadline=None)
def test_policies_never_change_the_answer(edges, policy_name):
    database = _database(edges)
    query = path_query(3)
    expected = brute_force_count(query, database)
    decomposition = generic_decompose(query)
    policy = None
    cache = None
    if policy_name == "never":
        policy = NeverCachePolicy()
    elif policy_name == "support":
        policy = SupportThresholdPolicy(database, query, threshold=1)
    elif policy_name == "bounded":
        cache = AdhesionCache(capacity=3, eviction="lru")
    joiner = CachedLeapfrogTrieJoin(
        query, database, decomposition, policy=policy, cache=cache
    )
    assert joiner.count() == expected


@given(edge_sets)
@settings(max_examples=25, deadline=None)
def test_evaluation_matches_brute_force_tuples(edges):
    database = _database(edges)
    query = path_query(3)
    decomposition = generic_decompose(query)
    joiner = CachedLeapfrogTrieJoin(query, database, decomposition)
    produced = {
        tuple(row[variable] for variable in query.variables)
        for row in joiner.evaluate_all()
    }
    assert produced == brute_force_evaluate(query, database)


@given(
    edge_sets,
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5)),
        min_size=2,
        max_size=6,
    ),
)
@settings(max_examples=30, deadline=None)
def test_random_pattern_queries_match_brute_force(edges, pattern_edges):
    pattern_edges = [(a, b) for a, b in pattern_edges if a != b]
    if not pattern_edges:
        return
    database = _database(edges)
    query = graph_pattern_query(pattern_edges)
    expected = brute_force_count(query, database)
    decomposition = generic_decompose(query)
    assert CachedLeapfrogTrieJoin(query, database, decomposition).count() == expected
    assert LeapfrogTrieJoin(query, database).count() == expected
