"""Tests for the executor protocol, registry and parameter contracts."""

import pytest

from repro.core.cache import AdhesionCache, NeverCachePolicy
from repro.core.instrumentation import OperationCounter
from repro.engine.engine import ALGORITHMS, QueryEngine
from repro.engine.executors import (
    AlgorithmSpec,
    ExecutorRequest,
    RowStreamAdapter,
    algorithm_spec,
    register_algorithm,
    registered_algorithms,
)
from repro.query.patterns import cycle_query, path_query

from tests.conftest import brute_force_evaluate, random_edge_database


@pytest.fixture
def database():
    return random_edge_database(seed=11, num_edges=45)


@pytest.fixture
def engine(database):
    return QueryEngine(database)


class TestRegistry:
    def test_all_paper_algorithms_registered(self):
        assert set(ALGORITHMS) == {
            "lftj", "clftj", "ytd", "generic_join", "pairwise", "plftj",
            "pclftj",
        }
        assert registered_algorithms() == ALGORITHMS

    def test_unknown_algorithm_has_helpful_error(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            algorithm_spec("magic")

    def test_duplicate_registration_rejected(self):
        spec = algorithm_spec("lftj")
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm(spec)
        register_algorithm(spec, replace=True)  # explicit replacement is fine

    def test_specs_declare_plan_needs(self):
        assert algorithm_spec("clftj").needs_plan
        assert algorithm_spec("ytd").needs_plan
        assert not algorithm_spec("lftj").needs_plan
        assert not algorithm_spec("generic_join").needs_plan
        assert not algorithm_spec("pairwise").needs_plan


class TestParameterContracts:
    """Unused planning parameters are rejected loudly, never dropped."""

    @pytest.mark.parametrize(
        "algorithm,kwargs",
        [
            ("lftj", {"cache_capacity": 5}),
            ("lftj", {"policy": NeverCachePolicy()}),
            ("lftj", {"cache": AdhesionCache()}),
            ("pairwise", {"variable_order": ()}),
            ("pairwise", {"cache_capacity": 5}),
            ("generic_join", {"policy": NeverCachePolicy()}),
            ("ytd", {"cache_capacity": 5}),
            ("ytd", {"variable_order": ()}),
        ],
    )
    def test_unused_parameters_rejected(self, engine, algorithm, kwargs):
        with pytest.raises(ValueError, match="does not use"):
            engine.count(path_query(2), algorithm=algorithm, **kwargs)

    def test_rejection_applies_to_evaluate_and_prepare(self, engine):
        with pytest.raises(ValueError, match="does not use"):
            engine.evaluate(path_query(2), algorithm="lftj", cache_capacity=5)
        with pytest.raises(ValueError, match="does not use"):
            engine.prepare(path_query(2), algorithm="pairwise", cache_capacity=5)

    def test_accepted_parameters_still_work(self, engine, database):
        from repro.query.terms import Variable

        query = path_query(2)
        order = tuple(reversed(query.variables))
        result = engine.count(query, algorithm="lftj", variable_order=order)
        assert result.variable_order == order

    def test_error_message_names_accepted_parameters(self, engine):
        with pytest.raises(ValueError, match="variable_order"):
            engine.count(path_query(2), algorithm="lftj", cache_capacity=5)


class TestUniformEvaluation:
    """Every executor yields rows as tuples in its declared variable order."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_rows_follow_declared_order(self, engine, database, algorithm):
        query = cycle_query(3)
        result = engine.evaluate(query, algorithm=algorithm)
        expected = brute_force_evaluate(query, database)
        positions = {variable: i for i, variable in enumerate(result.variable_order)}
        remap = [positions[variable] for variable in query.variables]
        assert {tuple(row[p] for p in remap) for row in result.rows} == expected

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_execution_metadata_merged(self, engine, algorithm):
        result = engine.count(cycle_query(3), algorithm=algorithm)
        # Every executor contributes at least one algorithm-specific fact.
        own_keys = set(result.metadata) - {
            "num_bags", "max_adhesion_size", "index_builds", "index_cache_hits",
            "plan_builds", "plan_cache_hits",
        }
        assert own_keys, f"{algorithm} reported no execution metadata"


class TestRowStreamAdapter:
    def test_adapter_streams_tuples(self, database):
        from repro.baselines.binary_join import PairwiseHashJoin

        query = path_query(2)
        inner = PairwiseHashJoin(query, database, OperationCounter())
        adapter = RowStreamAdapter(inner, query.variables)
        rows = set(adapter.evaluate())
        assert rows == brute_force_evaluate(query, database)
        assert adapter.counter is inner.counter
        assert adapter.execution_metadata()["join_order"]
