"""Tests for the Database catalog."""

import pytest

from repro.storage.database import Database
from repro.storage.relation import Relation


@pytest.fixture
def db() -> Database:
    return Database(
        [
            Relation("E", ("src", "dst"), [(1, 2), (2, 3)]),
            Relation("R", ("a", "b"), [(5, 6)]),
        ],
        name="test",
    )


class TestCatalog:
    def test_lookup(self, db):
        assert len(db.relation("E")) == 2

    def test_unknown_relation(self, db):
        with pytest.raises(KeyError):
            db.relation("missing")

    def test_contains(self, db):
        assert "E" in db
        assert "missing" not in db

    def test_len_and_names(self, db):
        assert len(db) == 2
        assert set(db.relation_names) == {"E", "R"}

    def test_duplicate_add_rejected(self, db):
        with pytest.raises(ValueError):
            db.add_relation(Relation("E", ("src", "dst"), []))

    def test_replace_allowed(self, db):
        db.add_relation(Relation("E", ("src", "dst"), [(9, 9)]), replace=True)
        assert len(db.relation("E")) == 1

    def test_total_tuples(self, db):
        assert db.total_tuples() == 3

    def test_summary(self, db):
        assert db.summary() == {"E": 2, "R": 1}


class TestTrieCache:
    def test_trie_index_memoised(self, db):
        first = db.trie_index("E", (0, 1))
        second = db.trie_index("E", (0, 1))
        assert first is second

    def test_different_orders_distinct(self, db):
        assert db.trie_index("E", (0, 1)) is not db.trie_index("E", (1, 0))

    def test_replace_invalidates_cache(self, db):
        stale = db.trie_index("E", (0, 1))
        db.add_relation(Relation("E", ("src", "dst"), [(7, 8)]), replace=True)
        fresh = db.trie_index("E", (0, 1))
        assert stale is not fresh
