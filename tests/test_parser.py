"""Tests for the datalog-like query parser."""

import pytest

from repro.query.parser import QueryParseError, format_query, parse_atom, parse_query
from repro.query.terms import Constant, Variable


class TestParseAtom:
    def test_simple_atom(self):
        atom = parse_atom("E(x, y)")
        assert atom.relation == "E"
        assert atom.terms == (Variable("x"), Variable("y"))

    def test_integer_constant(self):
        atom = parse_atom("R(x, 42)")
        assert atom.terms[1] == Constant(42)

    def test_negative_integer_constant(self):
        assert parse_atom("R(x, -3)").terms[1] == Constant(-3)

    def test_quoted_string_constant(self):
        assert parse_atom("R(x, 'abc')").terms[1] == Constant("abc")

    def test_double_quoted_string_constant(self):
        assert parse_atom('R(x, "abc")').terms[1] == Constant("abc")

    def test_whitespace_tolerated(self):
        atom = parse_atom("  E ( x ,  y )  ")
        assert atom.relation == "E"

    def test_no_terms_rejected(self):
        with pytest.raises(QueryParseError):
            parse_atom("E()")

    def test_garbage_rejected(self):
        with pytest.raises(QueryParseError):
            parse_atom("E(x, y")


class TestParseQuery:
    def test_bare_body(self):
        query = parse_query("E(x, y), E(y, z)")
        assert len(query) == 2
        assert query.variables == (Variable("x"), Variable("y"), Variable("z"))

    def test_headed_form_sets_name(self):
        query = parse_query("q(x, y) :- E(x, y), E(y, x)")
        assert query.name == "q"
        assert len(query) == 2

    def test_explicit_name_overrides_head(self):
        query = parse_query("q(x) :- E(x, y)", name="custom")
        assert query.name == "custom"

    def test_constants_in_body(self):
        query = parse_query("E(x, 3), E(3, y)")
        assert query.atoms[0].terms[1] == Constant(3)

    def test_empty_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("   ")

    def test_unbalanced_parentheses_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("E(x, y), E(y")

    def test_round_trip_through_format(self):
        query = parse_query("E(x, y), E(y, z)", name="p")
        reparsed = parse_query(format_query(query))
        assert reparsed == query

    def test_triangle(self):
        query = parse_query("E(a,b), E(b,c), E(c,a)")
        assert {v.name for v in query.variables} == {"a", "b", "c"}
