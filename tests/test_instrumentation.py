"""Tests for the operation counters."""

import pytest

from repro.core.instrumentation import OperationCounter


class TestRecording:
    def test_trie_recording(self):
        counter = OperationCounter()
        counter.record_trie(accesses=3, seeks=1, nexts=1, opens=1)
        assert counter.trie_accesses == 3
        assert counter.trie_seeks == 1
        assert counter.trie_nexts == 1
        assert counter.trie_opens == 1

    def test_cache_recording(self):
        counter = OperationCounter()
        counter.record_cache_hit()
        counter.record_cache_miss()
        counter.record_cache_miss()
        counter.record_cache_insertion()
        counter.record_cache_eviction()
        counter.record_cache_rejection()
        assert counter.cache_hits == 1
        assert counter.cache_misses == 2
        assert counter.cache_lookups == 3
        assert counter.cache_insertions == 1
        assert counter.cache_evictions == 1
        assert counter.cache_rejections == 1

    def test_hit_rate(self):
        counter = OperationCounter()
        assert counter.cache_hit_rate == 0.0
        counter.record_cache_hit()
        counter.record_cache_miss()
        assert counter.cache_hit_rate == pytest.approx(0.5)

    def test_memory_accesses_aggregates_sources(self):
        counter = OperationCounter()
        counter.record_trie(accesses=5)
        counter.record_hash_probe(3)
        counter.record_materialized(2)
        assert counter.memory_accesses == 10

    def test_results_and_recursion(self):
        counter = OperationCounter()
        counter.record_result(4)
        counter.record_recursive_call()
        assert counter.results_emitted == 4
        assert counter.recursive_calls == 1


class TestLifecycle:
    def test_reset(self):
        counter = OperationCounter()
        counter.record_trie(accesses=5, seeks=2)
        counter.record_cache_hit()
        counter.reset()
        assert counter.trie_accesses == 0
        assert counter.cache_hits == 0
        assert counter.memory_accesses == 0

    def test_merge(self):
        left = OperationCounter()
        right = OperationCounter()
        left.record_trie(accesses=2)
        right.record_trie(accesses=3)
        right.record_cache_hit()
        left.merge(right)
        assert left.trie_accesses == 5
        assert left.cache_hits == 1

    def test_as_dict_contains_derived_metrics(self):
        counter = OperationCounter()
        counter.record_trie(accesses=1)
        report = counter.as_dict()
        assert report["memory_accesses"] == 1
        assert "cache_hit_rate" in report
