"""Tests for the QueryEngine facade and execution results."""

import pytest

from repro.core.cache import AdhesionCache, NeverCachePolicy
from repro.engine.engine import ALGORITHMS, QueryEngine
from repro.engine.results import ExecutionResult
from repro.query.parser import parse_query
from repro.query.patterns import cycle_query, path_query

from tests.conftest import brute_force_count, brute_force_evaluate


@pytest.fixture
def engine(small_graph_db) -> QueryEngine:
    return QueryEngine(small_graph_db)


class TestCount:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_every_algorithm_agrees_with_brute_force(self, engine, small_graph_db, algorithm):
        query = cycle_query(4)
        result = engine.count(query, algorithm=algorithm)
        assert result.count == brute_force_count(query, small_graph_db)

    def test_unknown_algorithm_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.count(path_query(2), algorithm="magic")

    def test_result_metadata_for_clftj(self, engine):
        result = engine.count(cycle_query(4), algorithm="clftj")
        assert result.algorithm == "clftj"
        assert result.metadata["num_bags"] >= 1
        assert "cache_entries" in result.metadata
        assert result.elapsed_seconds >= 0

    def test_explicit_cache_capacity(self, engine, small_graph_db):
        query = path_query(4)
        result = engine.count(query, algorithm="clftj", cache_capacity=3)
        assert result.count == brute_force_count(query, small_graph_db)

    def test_explicit_policy(self, engine, small_graph_db):
        query = path_query(3)
        result = engine.count(query, algorithm="clftj", policy=NeverCachePolicy())
        assert result.count == brute_force_count(query, small_graph_db)
        assert result.counter.cache_insertions == 0

    def test_external_cache_reused(self, engine):
        query = path_query(4)
        cache = AdhesionCache()
        first = engine.count(query, algorithm="clftj", cache=cache)
        second = engine.count(query, algorithm="clftj", cache=cache)
        assert first.count == second.count
        assert second.counter.trie_accesses < first.counter.trie_accesses

    def test_custom_decomposition(self, engine, small_graph_db):
        from repro.decomposition.generic import generic_decompose

        query = cycle_query(5)
        decomposition = generic_decompose(query)
        result = engine.count(query, algorithm="clftj", decomposition=decomposition)
        assert result.count == brute_force_count(query, small_graph_db)


class TestEvaluate:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_rows_match_brute_force(self, engine, small_graph_db, algorithm):
        query = path_query(3)
        result = engine.evaluate(query, algorithm=algorithm)
        expected = brute_force_evaluate(query, small_graph_db)
        by_name = {variable: index for index, variable in enumerate(result.variable_order)}
        positions = [by_name[variable] for variable in query.variables]
        produced = {tuple(row[p] for p in positions) for row in result.rows}
        assert produced == expected
        assert result.count == len(expected)

    def test_rows_attached_to_result(self, engine):
        result = engine.evaluate(path_query(2), algorithm="clftj")
        assert result.rows is not None
        assert len(result.rows) == result.count


class TestCompare:
    def test_compare_runs_all_requested_algorithms(self, engine):
        results = engine.compare(cycle_query(4), algorithms=("lftj", "clftj", "ytd"))
        assert set(results) == {"lftj", "clftj", "ytd"}
        assert len({result.count for result in results.values()}) == 1

    def test_compare_evaluate_mode(self, engine):
        results = engine.compare(path_query(2), algorithms=("lftj", "clftj"), mode="evaluate")
        assert all(result.rows is not None for result in results.values())

    def test_compare_invalid_mode(self, engine):
        with pytest.raises(ValueError):
            engine.compare(path_query(2), mode="explain")


class TestExecutionResult:
    def test_as_record_flattens_counters(self, engine):
        result = engine.count(path_query(2), algorithm="clftj")
        record = result.as_record()
        assert record["algorithm"] == "clftj"
        assert "memory_accesses" in record
        assert "cache_hits" in record

    def test_speedup_over(self):
        from repro.core.instrumentation import OperationCounter

        fast = ExecutionResult("a", "q", 1, 1.0, OperationCounter())
        slow = ExecutionResult("b", "q", 1, 2.0, OperationCounter())
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_memory_accesses_property(self, engine):
        result = engine.count(path_query(2), algorithm="lftj")
        assert result.memory_accesses == result.counter.memory_accesses


class TestMultiRelationQueries:
    def test_engine_on_two_relations(self, two_relation_db):
        engine = QueryEngine(two_relation_db)
        query = parse_query("R(x, y), S(y, z), R(z, w)")
        counts = {
            algorithm: engine.count(query, algorithm=algorithm).count
            for algorithm in ("lftj", "clftj", "ytd", "pairwise")
        }
        assert len(set(counts.values())) == 1
        assert counts["lftj"] == brute_force_count(query, two_relation_db)
