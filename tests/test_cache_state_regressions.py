"""Regression tests for cache-state bugs fixed alongside the columnar backend.

Each test class documents one bug that existed in the seed implementation:
stale counter bindings on reused adhesion caches, self-join support
inflation, sticky per-node admission budgets, and ``QueryEngine.compare``
dropping its planning parameters.
"""

import pytest

from repro.core.cache import (
    AdhesionCache,
    BoundedCachePolicy,
    CompositePolicy,
    NeverCachePolicy,
    SupportThresholdPolicy,
)
from repro.core.clftj import CachedLeapfrogTrieJoin
from repro.core.instrumentation import OperationCounter
from repro.decomposition.generic import generic_decompose
from repro.engine.engine import QueryEngine
from repro.query.patterns import clique_query, path_query
from repro.query.terms import Variable
from repro.storage.database import Database
from repro.storage.relation import Relation


class TestCacheCounterRebinding:
    """A cache reused across executions (the Figure 10 workflow) must record
    hits/misses on the *current* execution's counter, not the first one's."""

    def test_second_executor_sees_cache_traffic(self, skewed_graph_db):
        query = path_query(4)
        decomposition = generic_decompose(query)
        cache = AdhesionCache()

        first = CachedLeapfrogTrieJoin(query, skewed_graph_db, decomposition, cache=cache)
        first.count()
        assert first.counter.cache_lookups > 0

        second = CachedLeapfrogTrieJoin(query, skewed_graph_db, decomposition, cache=cache)
        second.count()
        # Before the fix the cache kept pointing at first.counter, so the
        # second execution reported zero lookups despite a warm cache.
        assert second.counter.cache_lookups > 0
        assert second.counter.cache_hits > 0
        assert cache.counter is second.counter

    def test_rebinding_overrides_a_foreign_counter(self, skewed_graph_db):
        query = path_query(3)
        decomposition = generic_decompose(query)
        stale = OperationCounter()
        cache = AdhesionCache(counter=stale)
        joiner = CachedLeapfrogTrieJoin(query, skewed_graph_db, decomposition, cache=cache)
        joiner.count()
        assert stale.cache_lookups == 0
        assert joiner.counter.cache_lookups > 0


class TestCacheModeGuard:
    """Sharing one cache between count and evaluate must fail loudly, not
    crash deep inside a join on a type-confused entry."""

    def test_count_then_evaluate_raises_cleanly(self, skewed_graph_db):
        query = path_query(3)
        decomposition = generic_decompose(query)
        cache = AdhesionCache()
        CachedLeapfrogTrieJoin(query, skewed_graph_db, decomposition, cache=cache).count()
        assert len(cache) > 0
        joiner = CachedLeapfrogTrieJoin(query, skewed_graph_db, decomposition, cache=cache)
        with pytest.raises(ValueError, match="count.*mode"):
            list(joiner.evaluate())

    def test_empty_cache_may_switch_modes(self, skewed_graph_db):
        query = path_query(3)
        decomposition = generic_decompose(query)
        cache = AdhesionCache()
        first = CachedLeapfrogTrieJoin(query, skewed_graph_db, decomposition, cache=cache)
        expected = first.count()
        cache.invalidate()
        second = CachedLeapfrogTrieJoin(query, skewed_graph_db, decomposition, cache=cache)
        assert len(list(second.evaluate())) == expected

    def test_same_mode_reuse_still_works(self, skewed_graph_db):
        query = path_query(3)
        decomposition = generic_decompose(query)
        cache = AdhesionCache()
        a = CachedLeapfrogTrieJoin(query, skewed_graph_db, decomposition, cache=cache).count()
        b = CachedLeapfrogTrieJoin(query, skewed_graph_db, decomposition, cache=cache).count()
        assert a == b


class TestSupportThresholdSelfJoins:
    """Support must count each (relation, attribute) column once per variable;
    self-joins must not multiply it per atom."""

    @pytest.fixture
    def db(self) -> Database:
        # Value 5 occurs exactly 3 times in E.src and never in E.dst.
        rows = [(5, 10), (5, 11), (5, 12), (1, 2), (2, 3), (3, 1)]
        return Database([Relation("E", ("src", "dst"), rows)], name="support")

    def test_self_join_support_not_inflated(self, db):
        # In the triangle clique E(x1,x2), E(x1,x3), E(x2,x3) the variable x1
        # sits on E.src in two atoms; the seed summed that column twice.
        query = clique_query(3)
        policy = SupportThresholdPolicy(db, query, threshold=3)
        assert policy.support((Variable("x1"),), (5,)) == 3
        assert not policy.should_cache(0, (Variable("x1"),), (5,), 1)

    def test_distinct_columns_still_accumulate(self, db):
        # x2 appears on E.dst (atom 1) and E.src (atom 3): two different
        # columns, so their counts legitimately add up.
        query = clique_query(3)
        policy = SupportThresholdPolicy(db, query, threshold=0)
        counts = db.relation("E").value_counts("src")
        dst_counts = db.relation("E").value_counts("dst")
        value = 2
        assert policy.support((Variable("x2"),), (value,)) == (
            counts.get(value, 0) + dst_counts.get(value, 0)
        )


class TestBoundedPolicyReset:
    """The per-node admission budget must restart for every execution."""

    def test_unit_reset_restores_budget(self):
        policy = BoundedCachePolicy(max_entries_per_node=1)
        assert policy.should_cache(0, (), (), 1)
        assert not policy.should_cache(0, (), (), 1)
        policy.reset()
        assert policy.should_cache(0, (), (), 1)

    def test_composite_reset_is_recursive(self):
        inner = BoundedCachePolicy(max_entries_per_node=1)
        composite = CompositePolicy([CompositePolicy([inner]), NeverCachePolicy()])
        assert inner.should_cache(0, (), (), 1)
        composite.reset()
        assert inner.should_cache(0, (), (), 1)

    def test_second_execution_admits_again(self, skewed_graph_db):
        query = path_query(4)
        decomposition = generic_decompose(query)
        policy = BoundedCachePolicy(max_entries_per_node=2)

        first = OperationCounter()
        CachedLeapfrogTrieJoin(
            query, skewed_graph_db, decomposition,
            policy=policy, cache=AdhesionCache(), counter=first,
        ).count()
        assert first.cache_insertions > 0

        second = OperationCounter()
        CachedLeapfrogTrieJoin(
            query, skewed_graph_db, decomposition,
            policy=policy, cache=AdhesionCache(), counter=second,
        ).count()
        # Before the fix the budget was already exhausted, so a fresh cache
        # silently admitted nothing on the second run.
        assert second.cache_insertions == first.cache_insertions


class TestCompareForwardsParameters:
    """compare() must parameterise runs like single-algorithm count/evaluate."""

    def test_variable_order_is_forwarded(self, small_graph_db):
        engine = QueryEngine(small_graph_db)
        query = path_query(3)
        order = tuple(reversed(query.variables))
        results = engine.compare(
            query, algorithms=("lftj", "generic_join"), variable_order=order
        )
        assert results["lftj"].variable_order == order
        assert results["generic_join"].variable_order == order
        assert results["lftj"].count == results["generic_join"].count

    def test_policy_is_forwarded(self, skewed_graph_db):
        engine = QueryEngine(skewed_graph_db)
        query = path_query(4)
        results = engine.compare(
            query, algorithms=("clftj",), policy=NeverCachePolicy()
        )
        assert results["clftj"].counter.cache_insertions == 0

    def test_cache_capacity_is_forwarded(self, skewed_graph_db):
        engine = QueryEngine(skewed_graph_db)
        query = path_query(4)
        results = engine.compare(query, algorithms=("clftj",), cache_capacity=0)
        assert results["clftj"].metadata["cache_entries"] == 0

    def test_decomposition_is_forwarded(self, small_graph_db):
        engine = QueryEngine(small_graph_db)
        query = path_query(3)
        decomposition = generic_decompose(query)
        results = engine.compare(
            query, algorithms=("clftj", "ytd"), decomposition=decomposition
        )
        for result in results.values():
            assert result.metadata["num_bags"] == decomposition.num_nodes

    def test_evaluate_mode_forwards_too(self, small_graph_db):
        engine = QueryEngine(small_graph_db)
        query = path_query(3)
        order = tuple(reversed(query.variables))
        results = engine.compare(
            query, algorithms=("lftj",), mode="evaluate", variable_order=order
        )
        assert results["lftj"].variable_order == order

    def test_unknown_mode_still_rejected(self, small_graph_db):
        engine = QueryEngine(small_graph_db)
        with pytest.raises(ValueError):
            engine.compare(path_query(3), mode="explain")
