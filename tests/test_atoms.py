"""Tests for atoms and conjunctive queries."""

import pytest

from repro.query.atoms import Atom, ConjunctiveQuery
from repro.query.terms import Constant, Variable


class TestAtom:
    def test_terms_are_coerced(self):
        atom = Atom("E", ("x", 5))
        assert atom.terms == (Variable("x"), Constant(5))

    def test_arity(self):
        assert Atom("R", ("x", "y", "z")).arity == 3

    def test_variables_preserve_order_and_duplicates(self):
        atom = Atom("R", ("x", "y", "x"))
        assert atom.variables == (Variable("x"), Variable("y"), Variable("x"))

    def test_variable_set_deduplicates(self):
        atom = Atom("R", ("x", "y", "x"))
        assert atom.variable_set() == {Variable("x"), Variable("y")}

    def test_variable_positions(self):
        atom = Atom("R", ("x", "y", "x"))
        assert atom.variable_positions()[Variable("x")] == [0, 2]

    def test_constants_positions(self):
        atom = Atom("R", ("x", 3, "y"))
        assert atom.constants() == {1: 3}

    def test_substitute_full(self):
        atom = Atom("E", ("x", "y"))
        ground = atom.substitute({Variable("x"): 1, Variable("y"): 2})
        assert ground.terms == (Constant(1), Constant(2))

    def test_substitute_partial_leaves_null_variables(self):
        atom = Atom("E", ("x", "y"))
        partial = atom.substitute({Variable("x"): 1, Variable("y"): None})
        assert partial.terms == (Constant(1), Variable("y"))

    def test_str(self):
        assert str(Atom("E", ("x", "y"))) == "E(x, y)"

    def test_empty_relation_name_rejected(self):
        with pytest.raises(ValueError):
            Atom("", ("x",))


class TestConjunctiveQuery:
    def _triangle(self) -> ConjunctiveQuery:
        return ConjunctiveQuery(
            [Atom("E", ("x", "y")), Atom("E", ("y", "z")), Atom("E", ("z", "x"))],
            name="triangle",
        )

    def test_variables_in_first_appearance_order(self):
        query = self._triangle()
        assert query.variables == (Variable("x"), Variable("y"), Variable("z"))

    def test_variable_set(self):
        assert self._triangle().variable_set() == {Variable("x"), Variable("y"), Variable("z")}

    def test_relation_names(self):
        assert self._triangle().relation_names == ("E",)

    def test_atoms_with_variable(self):
        query = self._triangle()
        assert query.atoms_with_variable(Variable("y")) == (0, 1)

    def test_gaifman_edges_unique(self):
        edges = list(self._triangle().gaifman_edges())
        assert len(edges) == 3
        assert len(set(edges)) == 3

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([])

    def test_is_graph_query(self):
        assert self._triangle().is_graph_query()
        assert not ConjunctiveQuery([Atom("R", ("x", "y", "z"))]).is_graph_query()

    def test_substitute(self):
        query = self._triangle().substitute({Variable("x"): 1})
        assert query.atoms[0].terms[0] == Constant(1)
        assert query.atoms[2].terms[1] == Constant(1)

    def test_len_and_iter(self):
        query = self._triangle()
        assert len(query) == 3
        assert [atom.relation for atom in query] == ["E", "E", "E"]

    def test_equality_and_hash(self):
        assert self._triangle() == self._triangle()
        assert hash(self._triangle()) == hash(self._triangle())

    def test_str_contains_body(self):
        assert "E(x, y)" in str(self._triangle())
