"""Tests for the adhesion cache and the caching policies."""

import pytest

from repro.core.cache import (
    AdhesionCache,
    AlwaysCachePolicy,
    BoundedCachePolicy,
    CompositePolicy,
    NeverCachePolicy,
    SupportThresholdPolicy,
)
from repro.core.instrumentation import OperationCounter
from repro.query.parser import parse_query
from repro.query.terms import Variable
from repro.storage.database import Database
from repro.storage.relation import Relation


class TestAdhesionCache:
    def test_miss_then_hit(self):
        cache = AdhesionCache()
        assert cache.get(1, (5,)) is None
        cache.put(1, (5,), 42)
        assert cache.get(1, (5,)) == 42

    def test_entries_keyed_per_node(self):
        cache = AdhesionCache()
        cache.put(1, (5,), 10)
        cache.put(2, (5,), 20)
        assert cache.get(1, (5,)) == 10
        assert cache.get(2, (5,)) == 20
        assert len(cache) == 2

    def test_zero_value_is_a_hit(self):
        cache = AdhesionCache()
        cache.put(1, (5,), 0)
        assert cache.get(1, (5,)) == 0

    def test_overwrite_existing_key(self):
        cache = AdhesionCache()
        cache.put(1, (5,), 1)
        cache.put(1, (5,), 2)
        assert cache.get(1, (5,)) == 2
        assert len(cache) == 1

    def test_capacity_reject(self):
        cache = AdhesionCache(capacity=1, eviction="reject")
        assert cache.put(1, (1,), 10)
        assert not cache.put(1, (2,), 20)
        assert cache.get(1, (1,)) == 10
        assert cache.get(1, (2,)) is None

    def test_capacity_zero_never_stores(self):
        cache = AdhesionCache(capacity=0)
        assert not cache.put(1, (1,), 10)
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = AdhesionCache(capacity=2, eviction="lru")
        cache.put(1, (1,), "a")
        cache.put(1, (2,), "b")
        cache.get(1, (1,))          # touch (1,) so (2,) becomes LRU
        cache.put(1, (3,), "c")
        assert cache.get(1, (2,)) is None
        assert cache.get(1, (1,)) == "a"
        assert cache.get(1, (3,)) == "c"

    def test_counter_integration(self):
        counter = OperationCounter()
        cache = AdhesionCache(capacity=1, counter=counter)
        cache.get(1, (1,))
        cache.put(1, (1,), 5)
        cache.get(1, (1,))
        cache.put(1, (2,), 6)
        assert counter.cache_misses == 1
        assert counter.cache_hits == 1
        assert counter.cache_insertions == 1
        assert counter.cache_rejections == 1

    def test_invalidate_all(self):
        cache = AdhesionCache()
        cache.put(1, (1,), 1)
        cache.put(2, (1,), 1)
        assert cache.invalidate() == 2
        assert len(cache) == 0

    def test_invalidate_single_node(self):
        cache = AdhesionCache()
        cache.put(1, (1,), 1)
        cache.put(2, (1,), 1)
        assert cache.invalidate(node=1) == 1
        assert cache.get(2, (1,)) == 1

    def test_entries_per_node(self):
        cache = AdhesionCache()
        cache.put(1, (1,), 1)
        cache.put(1, (2,), 1)
        cache.put(2, (1,), 1)
        assert cache.entries_per_node() == {1: 2, 2: 1}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdhesionCache(capacity=-1)
        with pytest.raises(ValueError):
            AdhesionCache(eviction="random")


class TestSimplePolicies:
    def test_always(self):
        assert AlwaysCachePolicy().should_cache(1, (), (), 5)

    def test_never(self):
        policy = NeverCachePolicy()
        assert not policy.should_cache(1, (), (), 5)
        assert not policy.wants_intermediates(1)

    def test_composite_requires_all(self):
        policy = CompositePolicy([AlwaysCachePolicy(), NeverCachePolicy()])
        assert not policy.should_cache(1, (), (), 5)
        assert not policy.wants_intermediates(1)

    def test_composite_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositePolicy([])


class TestBoundedPolicy:
    def test_per_node_budget(self):
        policy = BoundedCachePolicy(max_entries_per_node=2)
        assert policy.should_cache(1, (), (1,), 0)
        assert policy.should_cache(1, (), (2,), 0)
        assert not policy.should_cache(1, (), (3,), 0)
        assert policy.should_cache(2, (), (1,), 0)  # separate budget per node

    def test_zero_budget_disables_intermediates(self):
        policy = BoundedCachePolicy(max_entries_per_node=0)
        assert not policy.wants_intermediates(1)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            BoundedCachePolicy(-1)


class TestSupportThresholdPolicy:
    @pytest.fixture
    def setup(self):
        rows = [(1, value) for value in range(10)] + [(2, 20), (3, 30)]
        database = Database([Relation("E", ("src", "dst"), rows)])
        query = parse_query("E(x, y), E(y, z)")
        return database, query

    def test_support_of_frequent_value(self, setup):
        database, query = setup
        policy = SupportThresholdPolicy(database, query, threshold=2)
        # value 1 occurs 10 times as a source of E -> support of x=1 is high
        assert policy.support((Variable("x"),), (1,)) >= 10

    def test_frequent_values_cached(self, setup):
        database, query = setup
        policy = SupportThresholdPolicy(database, query, threshold=2)
        assert policy.should_cache(0, (Variable("x"),), (1,), 99)

    def test_rare_values_not_cached(self, setup):
        database, query = setup
        policy = SupportThresholdPolicy(database, query, threshold=2)
        assert not policy.should_cache(0, (Variable("x"),), (3,), 99)

    def test_unknown_value_has_zero_support(self, setup):
        database, query = setup
        policy = SupportThresholdPolicy(database, query, threshold=0)
        assert policy.support((Variable("x"),), (999,)) == 0

    def test_empty_adhesion_support_is_zero(self, setup):
        database, query = setup
        policy = SupportThresholdPolicy(database, query, threshold=1)
        assert policy.support((), ()) == 0

    def test_multi_variable_support_is_minimum(self, setup):
        database, query = setup
        policy = SupportThresholdPolicy(database, query, threshold=0)
        support = policy.support((Variable("x"), Variable("y")), (1, 30))
        assert support == min(policy.support((Variable("x"),), (1,)),
                              policy.support((Variable("y"),), (30,)))

    def test_negative_threshold_rejected(self, setup):
        database, query = setup
        with pytest.raises(ValueError):
            SupportThresholdPolicy(database, query, threshold=-1)
