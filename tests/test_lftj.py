"""Tests for vanilla Leapfrog Trie Join."""

import pytest

from repro.core.instrumentation import OperationCounter
from repro.core.lftj import LeapfrogTrieJoin, lftj_count, lftj_evaluate
from repro.query.atoms import Atom, ConjunctiveQuery
from repro.query.parser import parse_query
from repro.query.patterns import clique_query, cycle_query, path_query, star_query
from repro.query.terms import Variable
from repro.storage.database import Database
from repro.storage.relation import Relation

from tests.conftest import brute_force_count, brute_force_evaluate


class TestCountsAgainstBruteForce:
    @pytest.mark.parametrize("length", [1, 2, 3, 4])
    def test_paths(self, small_graph_db, length):
        query = path_query(length)
        assert LeapfrogTrieJoin(query, small_graph_db).count() == brute_force_count(
            query, small_graph_db
        )

    @pytest.mark.parametrize("length", [3, 4, 5])
    def test_cycles(self, small_graph_db, length):
        query = cycle_query(length)
        assert LeapfrogTrieJoin(query, small_graph_db).count() == brute_force_count(
            query, small_graph_db
        )

    def test_triangle_clique(self, small_graph_db):
        query = clique_query(3)
        assert LeapfrogTrieJoin(query, small_graph_db).count() == brute_force_count(
            query, small_graph_db
        )

    def test_star(self, small_graph_db):
        query = star_query(3)
        assert LeapfrogTrieJoin(query, small_graph_db).count() == brute_force_count(
            query, small_graph_db
        )

    def test_multi_relation_query(self, two_relation_db):
        query = parse_query("R(x, y), S(y, z), R(z, w)")
        assert LeapfrogTrieJoin(query, two_relation_db).count() == brute_force_count(
            query, two_relation_db
        )

    def test_query_with_constant(self, small_graph_db):
        query = parse_query("E(x, y), E(y, 3)")
        assert LeapfrogTrieJoin(query, small_graph_db).count() == brute_force_count(
            query, small_graph_db
        )

    def test_self_loop_atom(self, tiny_db):
        query = parse_query("R(x, x), R(x, y)")
        assert LeapfrogTrieJoin(query, tiny_db).count() == brute_force_count(query, tiny_db)

    def test_example_3_1_database(self, tiny_db):
        # q of Figure 3: every edge over R with the paper's variable layout.
        query = parse_query(
            "R(x1, x2), R(x2, x3), R(x2, x4), R(x3, x4), R(x3, x5), R(x4, x6)"
        )
        assert LeapfrogTrieJoin(query, tiny_db).count() == brute_force_count(query, tiny_db)


class TestEvaluation:
    def test_tuples_match_brute_force(self, small_graph_db):
        query = path_query(3)
        expected = brute_force_evaluate(query, small_graph_db)
        lftj = LeapfrogTrieJoin(query, small_graph_db)
        produced = set(lftj.evaluate())
        # LFTJ yields tuples in its variable order == query.variables here.
        assert produced == expected

    def test_evaluate_all_returns_dicts(self, small_graph_db):
        query = path_query(2)
        rows = LeapfrogTrieJoin(query, small_graph_db).evaluate_all()
        assert all(set(row) == set(query.variables) for row in rows)

    def test_count_equals_number_of_evaluated_tuples(self, small_graph_db):
        query = cycle_query(4)
        joiner = LeapfrogTrieJoin(query, small_graph_db)
        assert joiner.count() == len(list(LeapfrogTrieJoin(query, small_graph_db).evaluate()))

    def test_results_sorted_lexicographically(self, small_graph_db):
        """Rows stream in trie order: value order raw, code order encoded."""
        query = path_query(2)
        rows = list(LeapfrogTrieJoin(query, small_graph_db).evaluate())
        if small_graph_db.encoding_active:
            code = small_graph_db.dictionary.code_of
            coded = [tuple(code(value) for value in row) for row in rows]
            assert coded == sorted(coded)
        else:
            assert rows == sorted(rows)
        raw_db = Database(list(small_graph_db), name="raw", encode=False)
        raw_rows = list(LeapfrogTrieJoin(query, raw_db).evaluate())
        assert raw_rows == sorted(raw_rows)
        assert set(raw_rows) == set(rows)

    def test_empty_result(self):
        database = Database([Relation("E", ("src", "dst"), [(1, 2)])])
        query = cycle_query(3)
        assert LeapfrogTrieJoin(query, database).count() == 0
        assert list(LeapfrogTrieJoin(query, database).evaluate()) == []


class TestVariableOrder:
    def test_custom_order_gives_same_count(self, small_graph_db):
        query = cycle_query(4)
        default_count = LeapfrogTrieJoin(query, small_graph_db).count()
        reordered = tuple(reversed(query.variables))
        assert LeapfrogTrieJoin(query, small_graph_db, reordered).count() == default_count

    def test_order_must_cover_all_variables(self, small_graph_db):
        query = path_query(3)
        with pytest.raises(ValueError):
            LeapfrogTrieJoin(query, small_graph_db, query.variables[:-1])

    def test_order_must_not_have_duplicates(self, small_graph_db):
        query = path_query(2)
        order = (query.variables[0],) * len(query.variables)
        with pytest.raises(ValueError):
            LeapfrogTrieJoin(query, small_graph_db, order)

    def test_order_must_not_have_extra_variables(self, small_graph_db):
        query = path_query(2)
        order = query.variables + (Variable("zzz"),)
        with pytest.raises(ValueError):
            LeapfrogTrieJoin(query, small_graph_db, order)


class TestInstrumentation:
    def test_counter_records_trie_traffic(self, small_graph_db):
        counter = OperationCounter()
        LeapfrogTrieJoin(path_query(3), small_graph_db, counter=counter).count()
        assert counter.trie_accesses > 0
        assert counter.recursive_calls > 0

    def test_results_emitted_matches_count(self, small_graph_db):
        counter = OperationCounter()
        total = LeapfrogTrieJoin(path_query(2), small_graph_db, counter=counter).count()
        assert counter.results_emitted == total

    def test_convenience_wrappers(self, small_graph_db):
        query = path_query(2)
        assert lftj_count(query, small_graph_db) == len(lftj_evaluate(query, small_graph_db))
