"""Tests for the benchmark harness and reporting utilities."""

import pytest

from repro.bench.harness import (
    BenchmarkCell,
    consistency_check,
    run_cell,
    run_grid,
    run_parallel_benchmark,
    run_update_benchmark,
    speedup_table,
)
from repro.bench.workloads import update_stream_workload
from repro.bench.reporting import format_records, format_results, print_records, results_to_records
from repro.engine.results import ExecutionResult
from repro.core.instrumentation import OperationCounter
from repro.query.patterns import cycle_query, path_query

from tests.conftest import random_edge_database


@pytest.fixture
def databases():
    return {
        "g1": random_edge_database(seed=1, num_edges=40),
        "g2": random_edge_database(seed=2, num_edges=40),
    }


class TestRunCell:
    def test_count_cell(self, databases):
        cell = BenchmarkCell("g1", databases["g1"], path_query(3), "clftj")
        result = run_cell(cell)
        assert result.metadata["dataset"] == "g1"
        assert result.metadata["mode"] == "count"
        assert result.count >= 0

    def test_evaluate_cell(self, databases):
        cell = BenchmarkCell("g1", databases["g1"], path_query(2), "lftj", mode="evaluate")
        result = run_cell(cell)
        assert result.rows is not None

    def test_invalid_mode_rejected(self, databases):
        cell = BenchmarkCell("g1", databases["g1"], path_query(2), "lftj", mode="explain")
        with pytest.raises(ValueError):
            run_cell(cell)


class TestEngineReuse:
    def test_run_cell_accepts_an_engine(self, databases):
        from repro.engine.engine import QueryEngine

        engine = QueryEngine(databases["g1"])
        cell = BenchmarkCell("g1", databases["g1"], cycle_query(4), "clftj")
        first = run_cell(cell, engine=engine)
        second = run_cell(cell, engine=engine)
        assert first.count == second.count
        assert second.metadata["plan_cache_hits"] >= 1
        assert second.metadata["index_builds"] == 0

    def test_grid_reuses_one_engine_per_database(self, databases):
        # The same query runs with two algorithms per dataset: the second
        # cell must find the plan and every index already cached.
        results = run_grid(databases, [cycle_query(4)], ["clftj", "ytd"])
        for result in results:
            assert "plan_cache_hits" in result.metadata
            assert "index_builds" in result.metadata
        ytd_runs = [r for r in results if r.algorithm == "ytd"]
        assert all(r.metadata["plan_cache_hits"] >= 1 for r in ytd_runs)
        assert all(r.metadata["plan_builds"] == 0 for r in ytd_runs)

    def test_grid_accepts_prebuilt_engines(self, databases):
        from repro.engine.engine import QueryEngine

        engines = {name: QueryEngine(db) for name, db in databases.items()}
        warmup = run_grid(databases, [cycle_query(4)], ["clftj"], engines=engines)
        rerun = run_grid(databases, [cycle_query(4)], ["clftj"], engines=engines)
        assert all(r.metadata["plan_cache_hits"] >= 1 for r in rerun)
        assert all(r.metadata["index_builds"] == 0 for r in rerun)
        assert [r.count for r in warmup] == [r.count for r in rerun]

    def test_grid_records_auto_choice(self, databases):
        results = run_grid(databases, [cycle_query(4)], ["auto"])
        for result in results:
            assert result.algorithm == "auto"
            assert result.metadata["selected_algorithm"] in ("lftj", "clftj", "ytd")
            assert result.as_record()["selected_algorithm"] == result.metadata["selected_algorithm"]


class TestRunGrid:
    def test_grid_covers_all_combinations(self, databases):
        results = run_grid(databases, [path_query(2), cycle_query(3)], ["lftj", "clftj"])
        assert len(results) == 2 * 2 * 2

    def test_grid_counts_agree_across_algorithms(self, databases):
        results = run_grid(databases, [cycle_query(4)], ["lftj", "clftj", "ytd"])
        consistency_check(results)

    def test_consistency_check_detects_mismatch(self):
        counter = OperationCounter()
        good = ExecutionResult("lftj", "q", 5, 0.1, counter, metadata={"dataset": "d"})
        bad = ExecutionResult("clftj", "q", 6, 0.1, counter, metadata={"dataset": "d"})
        with pytest.raises(AssertionError):
            consistency_check([good, bad])


class TestSpeedupTable:
    def test_speedups_relative_to_baseline(self, databases):
        results = run_grid(databases, [path_query(3)], ["lftj", "clftj"])
        rows = speedup_table(results, baseline="lftj")
        assert len(rows) == len(databases)
        assert all("speedup_clftj" in row for row in rows)
        assert all(row["speedup_clftj"] > 0 for row in rows)

    def test_memory_metric(self, databases):
        results = run_grid(databases, [path_query(3)], ["lftj", "clftj"])
        rows = speedup_table(results, baseline="lftj", metric="memory_accesses")
        assert all(row["speedup_clftj"] > 0 for row in rows)

    def test_unknown_metric_rejected(self, databases):
        results = run_grid(databases, [path_query(2)], ["lftj", "clftj"])
        with pytest.raises(ValueError):
            speedup_table(results, metric="joules")

    def test_missing_baseline_rows_skipped(self, databases):
        results = run_grid(databases, [path_query(2)], ["clftj"])
        assert speedup_table(results, baseline="lftj") == []


class TestUpdateBenchmark:
    def test_delta_strategy_avoids_rebuilds_and_agrees(self):
        workload = update_stream_workload(scale=0.25, num_batches=3, batch_size=6)
        report = run_update_benchmark(workload)
        delta = report["strategies"]["delta"]
        rebuild = report["strategies"]["rebuild"]
        assert delta["index_builds"] == 0
        assert delta["index_patches"] > 0
        assert delta["plan_builds"] == 0
        assert rebuild["index_builds"] > 0
        assert rebuild["plan_builds"] > 0
        assert len(report["final_counts"]) == len(workload.queries)

    def test_parallel_benchmark_cross_checks_counts(self, databases):
        report = run_parallel_benchmark(
            databases,
            [cycle_query(3)],
            backend="threads",
            workers=3,
            rounds=1,
        )
        assert report["workers"] == 3
        assert len(report["cells"]) == len(databases)
        for cell in report["cells"]:
            assert cell["workers"] == 3
            assert cell["morsels"] >= 1
            assert sum(cell["shard_results"]) == cell["count"]
            assert cell["partition_skew_static"] >= 1.0
            assert cell["partition_skew_morsel"] >= 1.0
            assert cell["task_seconds_p95"] >= cell["task_seconds_p50"] >= 0.0
            assert cell["worker_busy_max"] >= cell["worker_busy_mean"] >= 0.0
            assert cell["serial_seconds"] > 0
            assert cell["static_seconds"] > 0
            assert cell["parallel_seconds"] > 0

    def test_parallel_benchmark_speedup_bar_fails_loudly(self, databases):
        # A tiny workload cannot beat an absurd bar; the harness must raise
        # rather than record a silently-failed cell.
        with pytest.raises(AssertionError, match="speedup below"):
            run_parallel_benchmark(
                {"g1": databases["g1"]},
                [cycle_query(3)],
                backend="threads",
                workers=2,
                rounds=1,
                assert_speedup=1000.0,
            )

    def test_unknown_strategy_fails_loudly(self):
        workload = update_stream_workload(scale=0.25, num_batches=2, batch_size=4)
        with pytest.raises(ValueError):
            run_update_benchmark(workload, strategies=("delta", "nonsense"))


class TestReporting:
    def test_format_records_aligns_columns(self):
        table = format_records([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_records_empty(self):
        assert format_records([]) == "(no records)"

    def test_format_records_explicit_columns(self):
        table = format_records([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in table.splitlines()[0]

    def test_float_formatting(self):
        table = format_records([{"v": 0.000012345}, {"v": 123456.0}])
        assert "e-05" in table or "1.234e-05" in table

    def test_results_to_records_and_format(self, databases):
        results = run_grid(databases, [path_query(2)], ["lftj"])
        records = results_to_records(results)
        assert all("dataset" in record for record in records)
        assert "lftj" in format_results(results)

    def test_print_records(self, capsys, databases):
        results = run_grid(databases, [path_query(2)], ["lftj"])
        print_records(results_to_records(results), title="demo")
        captured = capsys.readouterr().out
        assert "demo" in captured
        assert "lftj" in captured


class TestBenchJson:
    def test_write_bench_json_merges_sections(self, tmp_path):
        from repro.bench.reporting import write_bench_json

        path = str(tmp_path / "BENCH.json")
        write_bench_json(path, "alpha", {"quick": False, "value": 1})
        document = write_bench_json(path, "beta", {"quick": False, "value": 2})
        assert set(document) == {"alpha", "beta"}

    def test_quick_runs_never_clobber_full_scale_sections(self, tmp_path):
        from repro.bench.reporting import write_bench_json

        path = str(tmp_path / "BENCH.json")
        write_bench_json(path, "alpha", {"quick": False, "value": "full"})
        document = write_bench_json(path, "alpha", {"quick": True, "value": "noise"})
        assert document["alpha"]["value"] == "full"
        # A full-scale rerun still updates the section.
        document = write_bench_json(path, "alpha", {"quick": False, "value": "fresh"})
        assert document["alpha"]["value"] == "fresh"
