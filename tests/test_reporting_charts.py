"""Tests for the ASCII bar-chart renderer."""

import pytest

from repro.bench.reporting import format_bar_chart


class TestFormatBarChart:
    def test_largest_value_gets_the_longest_bar(self):
        chart = format_bar_chart({"lftj": 100.0, "clftj": 10.0})
        lines = chart.splitlines()
        assert lines[0].count("#") > lines[1].count("#")

    def test_values_rendered_next_to_bars(self):
        chart = format_bar_chart({"a": 2.0, "b": 4.0})
        assert "2" in chart and "4" in chart

    def test_log_scale_compresses_ratios(self):
        linear = format_bar_chart({"big": 1000.0, "small": 1.0}, width=40)
        logarithmic = format_bar_chart({"big": 1000.0, "small": 1.0}, width=40, log_scale=True)
        small_linear = linear.splitlines()[1].count("#")
        small_log = logarithmic.splitlines()[1].count("#")
        assert small_log > small_linear

    def test_unit_suffix(self):
        chart = format_bar_chart({"a": 1.5}, unit="s")
        assert "s" in chart

    def test_empty_input(self):
        assert format_bar_chart({}) == "(no data)"

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            format_bar_chart({"a": -1.0})

    def test_zero_values_supported(self):
        chart = format_bar_chart({"a": 0.0, "b": 0.0})
        assert chart.count("|") == 2
