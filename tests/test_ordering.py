"""Tests for (strongly) compatible variable orderings."""

import pytest

from repro.decomposition.ordering import (
    default_order,
    is_compatible,
    is_strongly_compatible,
    strongly_compatible_order,
    subtree_interval,
)
from repro.decomposition.generic import generic_decompose
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.query.patterns import cycle_query, lollipop_query, path_query
from repro.query.terms import Variable


@pytest.fixture
def figure3_td() -> TreeDecomposition:
    return TreeDecomposition.build(
        (
            ["x1", "x2"],
            [
                (
                    ["x2", "x3", "x4"],
                    [
                        (["x3", "x5"], []),
                        (["x4", "x6"], []),
                    ],
                )
            ],
        )
    )


class TestStronglyCompatibleOrder:
    def test_derived_order_is_strongly_compatible(self, figure3_td):
        order = strongly_compatible_order(figure3_td)
        assert is_strongly_compatible(figure3_td, order)

    def test_derived_order_covers_all_variables(self, figure3_td):
        order = strongly_compatible_order(figure3_td)
        assert set(order) == figure3_td.all_variables()

    def test_owner_preorder_ranks_non_decreasing(self, figure3_td):
        order = strongly_compatible_order(figure3_td)
        ranks = [figure3_td.preorder_rank(figure3_td.owner(v)) for v in order]
        assert ranks == sorted(ranks)

    def test_custom_within_bag_key(self, figure3_td):
        order = strongly_compatible_order(
            figure3_td, within_bag_key=lambda v, td, node: v.name
        )
        assert is_strongly_compatible(figure3_td, order)

    def test_works_for_generated_decompositions(self):
        for query in (path_query(5), cycle_query(5), lollipop_query()):
            decomposition = generic_decompose(query)
            order = strongly_compatible_order(decomposition)
            assert is_strongly_compatible(decomposition, order)


class TestCompatibilityPredicates:
    def test_paper_order_is_strongly_compatible_with_figure3(self, figure3_td):
        order = tuple(Variable(f"x{i}") for i in range(1, 7))
        assert is_strongly_compatible(figure3_td, order)
        assert is_compatible(figure3_td, order)

    def test_strong_compatibility_implies_compatibility(self, figure3_td):
        order = strongly_compatible_order(figure3_td)
        assert is_compatible(figure3_td, order)

    def test_swapping_subtree_blocks_breaks_strong_compatibility(self, figure3_td):
        # x5 (owned by node 2) before x3/x4 (owned by node 1) breaks strength.
        order = tuple(Variable(name) for name in ("x1", "x2", "x5", "x3", "x4", "x6"))
        assert not is_strongly_compatible(figure3_td, order)

    def test_compatible_but_not_strongly_compatible(self, figure3_td):
        # Interleaving the two leaves' variables keeps parent-before-child
        # (compatibility) but violates the preorder (strong compatibility).
        order = tuple(Variable(name) for name in ("x1", "x2", "x3", "x4", "x6", "x5"))
        assert is_compatible(figure3_td, order)
        assert not is_strongly_compatible(figure3_td, order)

    def test_order_missing_variables_is_not_compatible(self, figure3_td):
        order = tuple(Variable(f"x{i}") for i in range(1, 6))
        assert not is_compatible(figure3_td, order)
        assert not is_strongly_compatible(figure3_td, order)


class TestSubtreeInterval:
    def test_interval_of_child_subtree(self, figure3_td):
        order = tuple(Variable(f"x{i}") for i in range(1, 7))
        assert subtree_interval(figure3_td, order, 1) == (2, 5)

    def test_interval_of_leaf(self, figure3_td):
        order = tuple(Variable(f"x{i}") for i in range(1, 7))
        assert subtree_interval(figure3_td, order, 2) == (4, 4)

    def test_non_contiguous_interval_rejected(self, figure3_td):
        # x1 sits in the middle of the variables owned by node 1's subtree,
        # so that subtree no longer maps to a contiguous interval.
        order = tuple(Variable(name) for name in ("x2", "x3", "x1", "x4", "x5", "x6"))
        with pytest.raises(ValueError):
            subtree_interval(figure3_td, order, 1)


class TestDefaultOrder:
    def test_default_order_is_textual(self):
        query = path_query(3)
        assert default_order(query) == query.variables
