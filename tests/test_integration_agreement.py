"""Cross-algorithm integration tests on the paper's workload stand-ins.

Every algorithm must produce identical counts (and identical result sets) on
the actual benchmark datasets, not just on the synthetic unit-test graphs.
These tests intentionally use small scales so they stay fast.
"""

import pytest

from repro.bench.workloads import imdb_database, snap_databases
from repro.engine.engine import QueryEngine
from repro.query.patterns import (
    bipartite_cycle_query,
    cycle_query,
    lollipop_query,
    path_query,
    random_pattern_query,
)

ALGOS = ("lftj", "clftj", "ytd", "generic_join", "pairwise")


@pytest.fixture(scope="module")
def small_snap():
    return snap_databases(("wiki-Vote", "p2p-Gnutella04"), scale=0.35)


@pytest.fixture(scope="module")
def small_imdb():
    return imdb_database(scale=0.3)


class TestSnapAgreement:
    @pytest.mark.parametrize("query_factory", [
        lambda: path_query(3),
        lambda: path_query(4),
        lambda: cycle_query(4),
        lambda: cycle_query(5),
        lambda: lollipop_query(3, 2),
        lambda: random_pattern_query(5, 0.4, seed=11),
    ])
    @pytest.mark.parametrize("dataset", ["wiki-Vote", "p2p-Gnutella04"])
    def test_count_agreement(self, small_snap, dataset, query_factory):
        query = query_factory()
        engine = QueryEngine(small_snap[dataset])
        counts = {algo: engine.count(query, algorithm=algo).count for algo in ALGOS}
        assert len(set(counts.values())) == 1, counts

    def test_evaluation_agreement(self, small_snap):
        query = cycle_query(4)
        engine = QueryEngine(small_snap["wiki-Vote"])
        canonical = {}
        for algorithm in ("lftj", "clftj", "ytd"):
            result = engine.evaluate(query, algorithm=algorithm)
            by_name = {variable: index for index, variable in enumerate(result.variable_order)}
            positions = [by_name[variable] for variable in query.variables]
            canonical[algorithm] = {tuple(row[p] for p in positions) for row in result.rows}
        assert canonical["lftj"] == canonical["clftj"] == canonical["ytd"]


class TestImdbAgreement:
    @pytest.mark.parametrize("length", [4, 6])
    def test_bipartite_cycles(self, small_imdb, length):
        query = bipartite_cycle_query(length)
        engine = QueryEngine(small_imdb)
        counts = {
            algo: engine.count(query, algorithm=algo).count
            for algo in ("lftj", "clftj", "ytd")
        }
        assert len(set(counts.values())) == 1, counts


class TestPaperShapeProperties:
    def test_clftj_beats_lftj_on_skewed_snap_paths(self, small_snap):
        """The headline claim: CLFTJ needs far less trie traffic than LFTJ."""
        query = path_query(4)
        engine = QueryEngine(small_snap["wiki-Vote"])
        lftj = engine.count(query, algorithm="lftj")
        clftj = engine.count(query, algorithm="clftj")
        assert clftj.count == lftj.count
        assert clftj.memory_accesses < lftj.memory_accesses

    def test_clftj_matches_lftj_on_triangles(self, small_snap):
        """3-cycles admit no decomposition, so CLFTJ is effectively LFTJ."""
        query = cycle_query(3)
        engine = QueryEngine(small_snap["wiki-Vote"])
        lftj = engine.count(query, algorithm="lftj")
        clftj = engine.count(query, algorithm="clftj")
        assert clftj.count == lftj.count
        assert clftj.counter.cache_hits == 0
