"""Randomized differential testing: every algorithm must agree, always.

A seeded generator produces random conjunctive queries over random small
relations with mixed str/int column domains, then asserts that all five
registered serial algorithms *and* the pool-backed parallel configurations
(morsel and static scheduling, thread and fork backends) produce exactly the
brute-force oracle's result set — on the encoded and the raw storage path,
and optionally after a random insert/delete stream.

The compiled-driver configurations (lftj/clftj/plftj/pclftj with
``compile=True``, serial
and parallel, over both storage paths) are additionally checked *ordered and
byte-identical* against their interpreted twins (``compile=False``), and the
serial pair must report identical instrumentation counters.

A separate seeded corpus re-runs the parallel configurations under
deterministic fault injection (SIGKILLed fork workers, injected morsel
exceptions) and asserts the recovered runs still match their serial twins
*ordered and byte-identical* — worker failure must be invisible to results.

Tier-1 runs a small deterministic corpus (seeds ``0..7``); set the
``REPRO_FUZZ_ITERS`` environment variable to fuzz deeper locally::

    REPRO_FUZZ_ITERS=200 PYTHONPATH=src python -m pytest tests/test_fuzz_differential.py -q
"""

import os
import random

import pytest

from repro.engine import QueryEngine, inject_faults
from repro.query.atoms import Atom, ConjunctiveQuery
from repro.query.terms import Constant, Variable
from repro.storage.database import Database
from repro.storage.relation import Relation

from tests.conftest import brute_force_evaluate

#: All serial algorithms under differential test.
SERIAL_ALGORITHMS = ("lftj", "clftj", "ytd", "generic_join", "pairwise")

#: Compiled configurations per instance: (algorithm, extra engine kwargs).
#: Each runs twice — compiled and interpreted — and must agree byte for
#: byte; on raw storage the compiled executor falls back to the interpreted
#: loop, which keeps the comparison meaningful on both paths.
COMPILED_CONFIGS = (
    ("lftj", {}),
    ("lftj", {"parallel": 3, "parallel_backend": "threads"}),
    ("plftj", {"parallel": 2, "parallel_backend": "threads"}),
    ("clftj", {}),
    ("clftj", {"parallel": 2, "parallel_backend": "threads"}),
    ("pclftj", {"parallel": 4, "parallel_backend": "threads"}),
)

#: Pool-backed parallel configurations exercised per instance:
#: (algorithm, workers, backend, scheduling mode).
PARALLEL_CONFIGS = (
    ("lftj", 2, "threads", "morsel"),
    ("lftj", 5, "threads", "static"),
    ("generic_join", 3, "threads", "morsel"),
    ("plftj", 4, "processes", "morsel"),
    ("plftj", 2, "processes", "static"),
    ("pclftj", 1, "threads", "morsel"),
    ("pclftj", 2, "processes", "morsel"),
    ("pclftj", 4, "threads", "static"),
)

#: Fault-injected parallel configurations: (algorithm, serial oracle
#: algorithm, backend, armed faults).  SIGKILLs only make sense on the fork
#: backend (thread workers share the test process); injected exceptions on
#: the thread backend are absorbed by the per-morsel retry budget.  Bounded
#: ``times`` keeps every fault within the recovery budget, so each run must
#: still equal its serial twin ordered and byte-identical.
FAULT_CONFIGS = (
    ("plftj", "lftj", "processes",
     {"pool.before_morsel": {"action": "kill", "after": 1, "times": 1}}),
    ("pclftj", "clftj", "processes",
     {"pool.before_morsel": {"action": "kill", "after": 2, "times": 2}}),
    ("pclftj", "clftj", "threads",
     {"pool.before_morsel": {"action": "raise", "after": 1, "times": 2}}),
)

#: Seeds for the fault-injection corpus (kept small: each config pays fork
#: and heartbeat latency for the killed workers).
FAULT_SEEDS = tuple(range(4))

#: Deterministic tier-1 corpus size; REPRO_FUZZ_ITERS extends it locally.
BASE_ITERATIONS = 8
FUZZ_ITERATIONS = max(int(os.environ.get("REPRO_FUZZ_ITERS", "0")), BASE_ITERATIONS)

#: Column domain classes.  Per-column domains stay homogeneous (a single
#: mixed column would not even sort on the raw path); the *query* still
#: joins across classes because different relations mix them per column.
INT_DOMAIN = tuple(range(9))
STR_DOMAIN = tuple(f"v{index:02d}" for index in range(11))
DOMAINS = {"int": INT_DOMAIN, "str": STR_DOMAIN}


def _random_relations(rng):
    """Two or three random relations with random per-column domain classes."""
    relations = []
    schemas = []
    for index in range(rng.randint(2, 3)):
        arity = rng.randint(1, 3)
        classes = tuple(rng.choice(("int", "str")) for _ in range(arity))
        rows = set()
        for _ in range(rng.randint(5, 28)):
            rows.add(tuple(rng.choice(DOMAINS[cls]) for cls in classes))
        name = f"R{index}"
        relations.append(
            Relation(name, tuple(f"c{i}" for i in range(arity)), rows)
        )
        schemas.append((name, classes))
    return relations, schemas


def _random_query(rng, schemas):
    """A connected random conjunctive query over the generated schemas.

    Variables are typed by domain class so a join never compares int against
    str (which the raw-object path could not even order).  Each atom after
    the first reuses at least one existing variable of a matching class when
    any column admits one, keeping the query connected.  Constants and
    repeated variables appear with small probability.
    """
    variables_by_class = {"int": [], "str": []}
    counter = [0]

    def fresh_variable(cls):
        counter[0] += 1
        variable = Variable(f"x{counter[0]}")
        variables_by_class[cls].append(variable)
        return variable

    def pick_variable(cls, prefer_existing):
        pool = variables_by_class[cls]
        if pool and (prefer_existing or rng.random() < 0.6):
            return rng.choice(pool)
        return fresh_variable(cls)

    atoms = []
    for atom_index in range(rng.randint(1, 3)):
        name, classes = rng.choice(schemas)
        connect_at = None
        if atom_index > 0:
            candidates = [
                position
                for position, cls in enumerate(classes)
                if variables_by_class[cls]
            ]
            if candidates:
                connect_at = rng.choice(candidates)
        terms = []
        for position, cls in enumerate(classes):
            if position == connect_at:
                terms.append(rng.choice(variables_by_class[cls]))
            elif rng.random() < 0.12:
                terms.append(Constant(rng.choice(DOMAINS[cls])))
            else:
                terms.append(pick_variable(cls, prefer_existing=False))
        if not any(isinstance(term, Variable) for term in terms):
            # Ground atoms are unsupported; force one variable in.
            terms[0] = pick_variable(classes[0], prefer_existing=True)
        atoms.append(Atom(name, terms))
    return ConjunctiveQuery(atoms, name=f"fuzz")


def _rows_in_query_order(result, query):
    by_name = {variable: index for index, variable in enumerate(result.variable_order)}
    positions = [by_name[variable] for variable in query.variables]
    return {tuple(row[p] for p in positions) for row in result.rows}


def _check_all_agree(query, database, expected):
    """Assert every serial algorithm and parallel configuration matches."""
    engine = QueryEngine(database)
    for algorithm in SERIAL_ALGORITHMS:
        result = engine.evaluate(query, algorithm=algorithm)
        rows = _rows_in_query_order(result, query)
        assert rows == expected, (
            f"{algorithm} disagrees with brute force on {query.name!r} "
            f"over {database.name!r}: {len(rows)} vs {len(expected)} rows"
        )
        assert result.count == len(result.rows)
    for algorithm, workers, backend, mode in PARALLEL_CONFIGS:
        result = engine.evaluate(
            query,
            algorithm=algorithm,
            parallel=workers,
            parallel_backend=backend,
            parallel_mode=mode,
        )
        rows = _rows_in_query_order(result, query)
        assert rows == expected, (
            f"parallel {algorithm} x{workers} ({backend}/{mode}) disagrees on "
            f"{query.name!r} over {database.name!r}"
        )
        assert result.metadata["parallel_mode"] == mode
        if result.metadata["partition_source"] != "single":
            assert result.metadata["workers"] == workers
            assert (
                result.metadata["morsels"] == workers
                if mode == "static"
                else result.metadata["morsels"] >= 1
            )


def _check_compiled_agrees(query, database, expected):
    """Compiled executions must equal their interpreted twins byte for byte."""
    engine = QueryEngine(database)
    for algorithm, options in COMPILED_CONFIGS:
        compiled = engine.evaluate(
            query, algorithm=algorithm, compile=True, **options
        )
        interpreted = engine.evaluate(
            query, algorithm=algorithm, compile=False, **options
        )
        assert compiled.rows == interpreted.rows, (
            f"compiled {algorithm} {options} row stream diverges from the "
            f"interpreted oracle on {query.name!r} over {database.name!r}"
        )
        assert compiled.count == interpreted.count == len(compiled.rows)
        rows = _rows_in_query_order(compiled, query)
        assert rows == expected, (
            f"compiled {algorithm} {options} disagrees with brute force on "
            f"{query.name!r} over {database.name!r}"
        )
        if not options:
            assert compiled.counter.as_dict() == interpreted.counter.as_dict(), (
                f"compiled {algorithm} instrumentation diverges on "
                f"{query.name!r} over {database.name!r}"
            )


def _random_update_stream(rng, database, schemas):
    """Apply 1-2 random insert/delete batches to one relation."""
    name, classes = rng.choice(schemas)
    for _ in range(rng.randint(1, 2)):
        inserts = [
            tuple(rng.choice(DOMAINS[cls]) for cls in classes)
            for _ in range(rng.randint(1, 6))
        ]
        existing = list(database.relation(name).tuples)
        deletes = rng.sample(existing, min(len(existing), rng.randint(0, 3)))
        database.insert(name, inserts)
        database.delete(name, deletes)


def _fuzz_one(seed):
    rng = random.Random(seed)
    relations, schemas = _random_relations(rng)
    query = _random_query(rng, schemas)

    def build(encode):
        return Database(
            [Relation(rel.name, rel.attributes, rel.tuples) for rel in relations],
            name=f"fuzz-{seed}-{'enc' if encode else 'raw'}",
            encode=encode,
        )

    for encode in (True, False):
        database = build(encode)
        try:
            expected = brute_force_evaluate(query, database)
            _check_all_agree(query, database, expected)
            _check_compiled_agrees(query, database, expected)
            if rng.random() < 0.5:
                _random_update_stream(rng, database, schemas)
                updated = brute_force_evaluate(query, database)
                _check_all_agree(query, database, updated)
                _check_compiled_agrees(query, database, updated)
        finally:
            database.close_pools()


@pytest.mark.parametrize("seed", range(FUZZ_ITERATIONS))
def test_random_queries_all_algorithms_agree(seed):
    _fuzz_one(seed)


@pytest.mark.parametrize("seed", FAULT_SEEDS)
def test_fault_injected_parallel_matches_serial_oracle(seed):
    """Killed/raising workers must be invisible: counts AND ordered rows."""
    rng = random.Random(1000 + seed)
    relations, schemas = _random_relations(rng)
    query = _random_query(rng, schemas)
    database = Database(
        [Relation(rel.name, rel.attributes, rel.tuples) for rel in relations],
        name=f"fuzz-fault-{seed}",
    )
    try:
        engine = QueryEngine(database)
        expected = brute_force_evaluate(query, database)
        for algorithm, oracle, backend, faults in FAULT_CONFIGS:
            serial = engine.evaluate(query, algorithm=oracle)
            assert _rows_in_query_order(serial, query) == expected
            # Kill faults must be armed before the pool forks so the worker
            # processes inherit the armed registry.
            database.close_pools()
            with inject_faults(faults):
                result = engine.evaluate(
                    query, algorithm=algorithm, parallel=2,
                    parallel_backend=backend,
                )
            assert result.rows == serial.rows, (
                f"fault-injected {algorithm} ({backend}) row stream diverges "
                f"from serial {oracle} on {query.name!r} (seed {seed})"
            )
            assert result.count == serial.count == len(serial.rows)
    finally:
        database.close_pools()


def test_fuzz_corpus_is_deterministic():
    """The same seed must generate the same instance (regression anchors)."""
    rng_a, rng_b = random.Random(5), random.Random(5)
    relations_a, schemas_a = _random_relations(rng_a)
    relations_b, schemas_b = _random_relations(rng_b)
    assert schemas_a == schemas_b
    assert [rel.tuples for rel in relations_a] == [rel.tuples for rel in relations_b]
    query_a = _random_query(rng_a, schemas_a)
    query_b = _random_query(rng_b, schemas_b)
    assert str(query_a) == str(query_b)
