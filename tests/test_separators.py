"""Tests for constrained separators and their ranked enumeration."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomposition.separators import (
    component_side,
    constrained_separator,
    enumerate_constrained_separators,
    is_separating_set,
    minimum_constrained_separator,
)


def path_graph(length: int) -> nx.Graph:
    return nx.path_graph(length)


def cycle_graph(length: int) -> nx.Graph:
    return nx.cycle_graph(length)


class TestIsSeparatingSet:
    def test_middle_of_a_path_separates(self):
        assert is_separating_set(path_graph(5), {2})

    def test_endpoint_does_not_separate(self):
        assert not is_separating_set(path_graph(5), {0})

    def test_cycle_needs_two_nodes(self):
        assert not is_separating_set(cycle_graph(5), {0})
        assert is_separating_set(cycle_graph(5), {0, 2})

    def test_constraint_side_must_be_avoidable(self):
        # {2} separates the path 0-1-2-3-4, and the component {3,4} avoids C={0}.
        assert is_separating_set(path_graph(5), {2}, constraint={0})
        # With C covering both sides no component is disjoint from C.
        assert not is_separating_set(path_graph(5), {2}, constraint={0, 4})

    def test_removing_everything_is_not_separating(self):
        assert not is_separating_set(path_graph(3), {0, 1, 2})


class TestMinimumConstrainedSeparator:
    def test_path_minimum_is_single_node(self):
        separator = minimum_constrained_separator(path_graph(5))
        assert separator is not None
        assert len(separator) == 1
        assert is_separating_set(path_graph(5), separator)

    def test_cycle_minimum_is_two_nodes(self):
        separator = minimum_constrained_separator(cycle_graph(6))
        assert separator is not None
        assert len(separator) == 2

    def test_star_centre_is_the_only_separator(self):
        star = nx.star_graph(4)  # centre 0
        separator = minimum_constrained_separator(star)
        assert separator == frozenset({0})

    def test_clique_has_no_separator(self):
        assert minimum_constrained_separator(nx.complete_graph(4)) is None

    def test_constraint_respected(self):
        separator = minimum_constrained_separator(path_graph(5), constraint={0, 1})
        assert separator is not None
        assert is_separating_set(path_graph(5), separator, constraint={0, 1})

    def test_include_constraint(self):
        separator = minimum_constrained_separator(path_graph(5), include={3})
        assert separator is not None
        assert 3 in separator

    def test_exclude_constraint(self):
        separator = minimum_constrained_separator(cycle_graph(6), exclude={0})
        assert separator is not None
        assert 0 not in separator

    def test_conflicting_constraints(self):
        assert minimum_constrained_separator(path_graph(5), include={2}, exclude={2}) is None

    def test_max_size_bound(self):
        assert minimum_constrained_separator(nx.complete_graph(5), max_size=2) is None
        assert minimum_constrained_separator(path_graph(5), max_size=1) is not None

    def test_disconnected_graph_has_empty_separator(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (2, 3)])
        separator = minimum_constrained_separator(graph)
        assert separator == frozenset()


class TestEnumeration:
    def test_sizes_non_decreasing(self):
        sizes = [len(s) for s in enumerate_constrained_separators(cycle_graph(6), max_results=10)]
        assert sizes == sorted(sizes)

    def test_no_duplicates(self):
        separators = list(enumerate_constrained_separators(cycle_graph(6), max_results=20))
        assert len(separators) == len(set(separators))

    def test_all_results_are_valid_separators(self):
        graph = cycle_graph(5)
        for separator in enumerate_constrained_separators(graph, max_results=10):
            assert is_separating_set(graph, separator)

    def test_path_enumerates_all_single_node_separators_first(self):
        separators = list(enumerate_constrained_separators(path_graph(5), max_size=1))
        assert set(separators) == {frozenset({1}), frozenset({2}), frozenset({3})}

    def test_max_size_respected(self):
        for separator in enumerate_constrained_separators(cycle_graph(6), max_size=2, max_results=20):
            assert len(separator) <= 2

    def test_constraint_respected_in_enumeration(self):
        graph = path_graph(6)
        for separator in enumerate_constrained_separators(graph, constraint={0}, max_results=10):
            assert is_separating_set(graph, separator, constraint={0})

    def test_clique_yields_nothing(self):
        assert list(enumerate_constrained_separators(nx.complete_graph(4), max_results=5)) == []


class TestConstrainedSeparatorHelper:
    def test_returns_separator_and_side(self):
        result = constrained_separator(path_graph(5), constraint={0})
        assert result is not None
        separator, side = result
        assert is_separating_set(path_graph(5), separator, constraint={0})
        assert 0 in side or 0 in separator

    def test_component_side_contains_constraint(self):
        graph = path_graph(5)
        side = component_side(graph, {2}, {0})
        assert side == frozenset({0, 1})

    def test_component_side_arbitrary_when_constraint_inside_separator(self):
        graph = path_graph(5)
        side = component_side(graph, {2}, {2})
        assert side in (frozenset({0, 1}), frozenset({3, 4}))

    def test_none_for_clique(self):
        assert constrained_separator(nx.complete_graph(4)) is None


@given(st.integers(min_value=4, max_value=8))
@settings(max_examples=5, deadline=None)
def test_cycle_two_node_separators_count(length):
    """A cycle of length n has exactly n*(n-3)/2 two-node separating sets."""
    graph = cycle_graph(length)
    separators = [
        s for s in enumerate_constrained_separators(graph, max_size=2, max_results=1000)
    ]
    expected = length * (length - 3) // 2
    assert len(separators) == expected
