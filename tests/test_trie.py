"""Tests for the trie index and its LFTJ-style iterator."""

import pytest

from repro.core.instrumentation import OperationCounter
from repro.storage.relation import Relation
from repro.storage.trie import TrieIndex, TrieIterator


@pytest.fixture
def relation() -> Relation:
    return Relation("E", ("src", "dst"), [(1, 2), (1, 5), (2, 2), (3, 1), (3, 4)])


@pytest.fixture
def trie(relation) -> TrieIndex:
    return TrieIndex.build(relation, (0, 1))


class TestBuild:
    def test_depth(self, trie):
        assert trie.depth == 2

    def test_root_key_count(self, trie):
        assert len(trie) == 3

    def test_tuple_count(self, trie):
        assert trie.tuple_count() == 5

    def test_reversed_order(self, relation):
        reversed_trie = TrieIndex.build(relation, (1, 0))
        assert reversed_trie.tuple_count() == 5
        iterator = reversed_trie.iterator()
        iterator.open()
        assert iterator.key() == 1  # smallest dst value

    def test_invalid_permutation_rejected(self, relation):
        with pytest.raises(ValueError):
            TrieIndex.build(relation, (0, 0))

    def test_from_tuples(self):
        trie = TrieIndex.from_tuples([(1, 2), (1, 3)])
        assert trie.tuple_count() == 2

    def test_from_tuples_empty_rejected(self):
        with pytest.raises(ValueError):
            TrieIndex.from_tuples([])

    def test_empty_relation(self):
        empty = TrieIndex.build(Relation("E", ("a", "b"), []), (0, 1))
        iterator = empty.iterator()
        iterator.open()
        assert iterator.at_end()


class TestIteratorNavigation:
    def test_first_level_keys(self, trie):
        iterator = trie.iterator()
        iterator.open()
        keys = []
        while not iterator.at_end():
            keys.append(iterator.key())
            iterator.next()
        assert keys == [1, 2, 3]

    def test_open_descends_to_children(self, trie):
        iterator = trie.iterator()
        iterator.open()
        iterator.open()
        assert iterator.key() == 2  # children of 1 are [2, 5]

    def test_up_returns_to_parent(self, trie):
        iterator = trie.iterator()
        iterator.open()
        iterator.open()
        iterator.up()
        assert iterator.key() == 1

    def test_seek_lands_on_least_upper_bound(self, trie):
        iterator = trie.iterator()
        iterator.open()
        iterator.seek(2)
        assert iterator.key() == 2
        iterator.seek(3)
        assert iterator.key() == 3

    def test_seek_past_end(self, trie):
        iterator = trie.iterator()
        iterator.open()
        iterator.seek(99)
        assert iterator.at_end()

    def test_seek_never_moves_backwards(self, trie):
        iterator = trie.iterator()
        iterator.open()
        iterator.seek(3)
        iterator.seek(1)
        assert iterator.key() == 3

    def test_current_prefix(self, trie):
        iterator = trie.iterator()
        iterator.open()
        iterator.next()
        iterator.open()
        assert iterator.current_prefix() == (2, 2)

    def test_full_enumeration_matches_relation(self, trie, relation):
        iterator = trie.iterator()
        tuples = []
        iterator.open()
        while not iterator.at_end():
            first = iterator.key()
            iterator.open()
            while not iterator.at_end():
                tuples.append((first, iterator.key()))
                iterator.next()
            iterator.up()
            iterator.next()
        assert tuples == list(relation.tuples)

    def test_reset(self, trie):
        iterator = trie.iterator()
        iterator.open()
        iterator.open()
        iterator.reset()
        assert iterator.depth == 0


class TestIteratorGuards:
    def test_key_before_open(self, trie):
        with pytest.raises(RuntimeError):
            trie.iterator().key()

    def test_up_at_root(self, trie):
        with pytest.raises(RuntimeError):
            trie.iterator().up()

    def test_open_past_leaves(self, trie):
        iterator = trie.iterator()
        iterator.open()
        iterator.open()
        with pytest.raises(RuntimeError):
            iterator.open()

    def test_next_at_end(self, trie):
        iterator = trie.iterator()
        iterator.open()
        iterator.seek(99)
        with pytest.raises(RuntimeError):
            iterator.next()

    def test_key_at_end(self, trie):
        iterator = trie.iterator()
        iterator.open()
        iterator.seek(99)
        with pytest.raises(RuntimeError):
            iterator.key()


class TestInstrumentation:
    def test_operations_counted(self, trie):
        counter = OperationCounter()
        iterator = trie.iterator(counter)
        iterator.open()
        iterator.next()
        iterator.seek(3)
        assert counter.trie_opens == 1
        assert counter.trie_nexts == 1
        assert counter.trie_seeks == 1
        assert counter.trie_accesses >= 3

    def test_seek_costs_logarithmic_accesses(self):
        rows = [(value,) for value in range(1024)]
        trie = TrieIndex.from_tuples(rows)
        counter = OperationCounter()
        iterator = trie.iterator(counter)
        iterator.open()
        before = counter.trie_accesses
        iterator.seek(1023)
        # 1024 remaining siblings -> about log2(1024) = 10-11 probes, not 1024.
        assert counter.trie_accesses - before <= 12
