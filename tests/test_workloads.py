"""Tests for the figure-by-figure workload definitions."""

import pytest

from repro.bench.workloads import (
    FIGURE5_DATASETS,
    cycle_queries,
    evaluation_datasets,
    figure10_cache_sizes,
    figure10_queries,
    imdb_database,
    lollipop_workload,
    path_queries,
    random_queries,
    snap_databases,
    update_stream_workload,
)


class TestSnapWorkloads:
    def test_figure5_datasets_resolvable(self):
        databases = snap_databases(FIGURE5_DATASETS)
        assert set(databases) == set(FIGURE5_DATASETS)
        assert all(len(db.relation("E")) > 0 for db in databases.values())

    def test_scale_parameter(self):
        small = snap_databases(("wiki-Vote",), scale=0.5)["wiki-Vote"]
        regular = snap_databases(("wiki-Vote",), scale=1.0)["wiki-Vote"]
        assert len(small.relation("E")) < len(regular.relation("E"))

    def test_evaluation_datasets_are_smaller(self):
        eval_db = evaluation_datasets()["wiki-Vote"]
        count_db = snap_databases(("wiki-Vote",))["wiki-Vote"]
        assert len(eval_db.relation("E")) <= len(count_db.relation("E"))


class TestQueryFamilies:
    def test_path_queries_cover_3_to_7(self):
        names = [query.name for query in path_queries()]
        assert names == ["3-path", "4-path", "5-path", "6-path", "7-path"]

    def test_cycle_queries_cover_3_to_6(self):
        names = [query.name for query in cycle_queries()]
        assert names == ["3-cycle", "4-cycle", "5-cycle", "6-cycle"]

    def test_random_queries_connected_and_named(self):
        queries = random_queries(patterns_per_setting=1)
        assert len(queries) == 2
        assert all("rand" in query.name for query in queries)

    def test_figure10_queries_are_imdb_cycles(self):
        queries = figure10_queries()
        assert [len(query) for query in queries] == [4, 6]
        assert all(
            set(query.relation_names) == {"male_cast", "female_cast"} for query in queries
        )

    def test_figure10_cache_sizes_increasing(self):
        sizes = figure10_cache_sizes()
        assert list(sizes) == sorted(sizes)
        assert sizes[0] == 0


class TestOtherWorkloads:
    def test_imdb_database_has_both_relations(self):
        database = imdb_database()
        assert set(database.relation_names) == {"male_cast", "female_cast"}

    def test_imdb_scale(self):
        assert len(imdb_database(scale=0.5).relation("male_cast")) < len(
            imdb_database(scale=1.0).relation("male_cast")
        )

    def test_lollipop_workload(self):
        query, databases = lollipop_workload()
        assert query.name == "{3,2}-lollipop"
        assert set(databases) == {"wiki-Vote", "ca-GrQc"}


class TestUpdateStreamWorkload:
    def test_batches_insert_fresh_edges_only(self):
        workload = update_stream_workload(scale=0.3, num_batches=3, batch_size=5)
        database = workload.make_database()
        existing = set(database.relation(workload.relation_name).tuples)
        seen = set()
        for batch in workload.batches:
            for edge in batch.inserts:
                assert edge not in existing, "inserts must be genuinely new"
                assert edge not in seen, "inserts must not repeat across batches"
                seen.add(edge)
            for edge in batch.deletes:
                assert edge in existing, "deletes target original edges"

    def test_deletes_do_not_repeat(self):
        workload = update_stream_workload(scale=0.3, num_batches=4, batch_size=8)
        deleted = [edge for batch in workload.batches for edge in batch.deletes]
        assert len(deleted) == len(set(deleted))

    def test_make_database_is_reproducible(self):
        workload = update_stream_workload(scale=0.3)
        first = workload.make_database()
        second = workload.make_database()
        assert first.relation("E").tuples == second.relation("E").tuples

    def test_queries_are_triangle_and_clique(self):
        workload = update_stream_workload(scale=0.3)
        assert [query.name for query in workload.queries] == ["3-cycle", "4-clique"]
