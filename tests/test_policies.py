"""Tests for the extended caching policies (admission, skew-aware, adaptive)."""

import pytest

from repro.core.cache import AdhesionCache
from repro.core.clftj import CachedLeapfrogTrieJoin
from repro.core.policies import (
    AdaptivePolicy,
    FrequencyAdmissionPolicy,
    SkewAwarePolicy,
    policy_suite,
)
from repro.decomposition.generic import generic_decompose
from repro.query.patterns import cycle_query, path_query
from repro.query.terms import Variable

from tests.conftest import brute_force_count


class TestFrequencyAdmissionPolicy:
    def test_first_touch_not_admitted(self):
        policy = FrequencyAdmissionPolicy(min_occurrences=2)
        assert not policy.should_cache(1, (), (5,), 10)
        assert policy.should_cache(1, (), (5,), 10)

    def test_min_occurrences_one_behaves_like_always(self):
        policy = FrequencyAdmissionPolicy(min_occurrences=1)
        assert policy.should_cache(1, (), (5,), 10)

    def test_counts_are_per_key(self):
        policy = FrequencyAdmissionPolicy(min_occurrences=2)
        policy.should_cache(1, (), (5,), 10)
        assert not policy.should_cache(1, (), (6,), 10)
        assert not policy.should_cache(2, (), (5,), 10)

    def test_invalid_parameter(self):
        with pytest.raises(ValueError):
            FrequencyAdmissionPolicy(min_occurrences=0)

    def test_correctness_under_clftj(self, skewed_graph_db):
        query = path_query(4)
        decomposition = generic_decompose(query)
        joiner = CachedLeapfrogTrieJoin(
            query, skewed_graph_db, decomposition,
            policy=FrequencyAdmissionPolicy(min_occurrences=2),
        )
        assert joiner.count() == brute_force_count(query, skewed_graph_db)


class TestSkewAwarePolicy:
    def test_skewed_adhesion_enabled(self, skewed_graph_db):
        query = path_query(4)
        decomposition = generic_decompose(query)
        policy = SkewAwarePolicy(skewed_graph_db, query, decomposition, min_skew=0.01)
        cached_nodes = [
            node for node in decomposition.preorder()
            if node != decomposition.root and policy.node_enabled(node)
        ]
        assert cached_nodes

    def test_impossible_threshold_disables_everything(self, skewed_graph_db):
        query = path_query(3)
        decomposition = generic_decompose(query)
        policy = SkewAwarePolicy(skewed_graph_db, query, decomposition, min_skew=1.0)
        assert not any(
            policy.node_enabled(node) for node in decomposition.preorder()
        )

    def test_root_never_enabled(self, skewed_graph_db):
        query = path_query(3)
        decomposition = generic_decompose(query)
        policy = SkewAwarePolicy(skewed_graph_db, query, decomposition)
        assert not policy.node_enabled(decomposition.root)

    def test_invalid_threshold(self, skewed_graph_db):
        query = path_query(3)
        decomposition = generic_decompose(query)
        with pytest.raises(ValueError):
            SkewAwarePolicy(skewed_graph_db, query, decomposition, min_skew=2.0)

    def test_correctness_under_clftj(self, skewed_graph_db):
        query = cycle_query(4)
        decomposition = generic_decompose(query)
        policy = SkewAwarePolicy(skewed_graph_db, query, decomposition)
        joiner = CachedLeapfrogTrieJoin(query, skewed_graph_db, decomposition, policy=policy)
        assert joiner.count() == brute_force_count(query, skewed_graph_db)


class TestAdaptivePolicy:
    def test_budget_enforced(self):
        policy = AdaptivePolicy(max_entries_per_node=2)
        assert policy.should_cache(1, (), (1,), 0)
        assert policy.should_cache(1, (), (2,), 0)
        assert not policy.should_cache(1, (), (3,), 0)
        assert policy.admitted(1) == 2

    def test_budgets_are_per_node(self):
        policy = AdaptivePolicy(max_entries_per_node=1)
        assert policy.should_cache(1, (), (1,), 0)
        assert policy.should_cache(2, (), (1,), 0)

    def test_zero_budget_disables_intermediates(self):
        assert not AdaptivePolicy(max_entries_per_node=0).wants_intermediates(3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(max_entries_per_node=-1)
        with pytest.raises(ValueError):
            AdaptivePolicy(warmup=-1)

    def test_correctness_under_clftj(self, skewed_graph_db):
        query = path_query(4)
        decomposition = generic_decompose(query)
        joiner = CachedLeapfrogTrieJoin(
            query, skewed_graph_db, decomposition,
            policy=AdaptivePolicy(max_entries_per_node=3),
        )
        assert joiner.count() == brute_force_count(query, skewed_graph_db)


class TestPolicySuite:
    def test_suite_contains_all_named_policies(self, skewed_graph_db):
        query = path_query(4)
        decomposition = generic_decompose(query)
        suite = policy_suite(skewed_graph_db, query, decomposition)
        assert set(suite) == {
            "always", "never", "support>=2", "second-touch", "skew-aware", "adaptive-1k"
        }

    def test_every_policy_in_the_suite_is_correct(self, skewed_graph_db):
        query = path_query(4)
        decomposition = generic_decompose(query)
        expected = brute_force_count(query, skewed_graph_db)
        for name, policy in policy_suite(skewed_graph_db, query, decomposition).items():
            joiner = CachedLeapfrogTrieJoin(
                query, skewed_graph_db, decomposition,
                policy=policy, cache=AdhesionCache(),
            )
            assert joiner.count() == expected, name
