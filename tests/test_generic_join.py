"""Tests for the GenericJoin baseline."""

import pytest

from repro.baselines.generic_join import GenericJoin, generic_join_count
from repro.core.instrumentation import OperationCounter
from repro.core.lftj import LeapfrogTrieJoin
from repro.query.parser import parse_query
from repro.query.patterns import clique_query, cycle_query, path_query, star_query

from tests.conftest import brute_force_count, brute_force_evaluate


class TestCounts:
    @pytest.mark.parametrize("query_factory", [
        lambda: path_query(2),
        lambda: path_query(4),
        lambda: cycle_query(3),
        lambda: cycle_query(5),
        lambda: star_query(3),
        lambda: clique_query(3),
    ])
    def test_matches_brute_force(self, small_graph_db, query_factory):
        query = query_factory()
        assert GenericJoin(query, small_graph_db).count() == brute_force_count(
            query, small_graph_db
        )

    def test_matches_lftj(self, skewed_graph_db):
        query = cycle_query(4)
        assert GenericJoin(query, skewed_graph_db).count() == LeapfrogTrieJoin(
            query, skewed_graph_db
        ).count()

    def test_multi_relation(self, two_relation_db):
        query = parse_query("R(x, y), S(y, z)")
        assert GenericJoin(query, two_relation_db).count() == brute_force_count(
            query, two_relation_db
        )

    def test_query_with_constant(self, small_graph_db):
        query = parse_query("E(x, y), E(y, 3)")
        assert GenericJoin(query, small_graph_db).count() == brute_force_count(
            query, small_graph_db
        )

    def test_convenience_wrapper(self, small_graph_db):
        query = path_query(3)
        assert generic_join_count(query, small_graph_db) == brute_force_count(
            query, small_graph_db
        )


class TestEvaluation:
    def test_tuples_match_brute_force(self, small_graph_db):
        query = path_query(3)
        produced = set(GenericJoin(query, small_graph_db).evaluate())
        assert produced == brute_force_evaluate(query, small_graph_db)

    def test_count_matches_evaluation_length(self, small_graph_db):
        query = cycle_query(4)
        join = GenericJoin(query, small_graph_db)
        assert join.count() == len(list(GenericJoin(query, small_graph_db).evaluate()))


class TestConfiguration:
    def test_custom_variable_order(self, small_graph_db):
        query = cycle_query(4)
        reversed_order = tuple(reversed(query.variables))
        assert GenericJoin(query, small_graph_db, reversed_order).count() == GenericJoin(
            query, small_graph_db
        ).count()

    def test_invalid_order_rejected(self, small_graph_db):
        query = path_query(3)
        with pytest.raises(ValueError):
            GenericJoin(query, small_graph_db, query.variables[:-1])

    def test_hash_probes_counted(self, small_graph_db):
        counter = OperationCounter()
        GenericJoin(path_query(3), small_graph_db, counter=counter).count()
        assert counter.hash_probes > 0
        assert counter.memory_accesses > 0
