"""Morsel-parallel execution: differential correctness + the bounded-cursor
contract + thread-safety audits.

Three suites:

* **Differential** — every parallel configuration (backend x inner algorithm
  x encoded/raw x worker count, prime counts and empty ranges included) must
  produce exactly the serial executor's count and row set.
* **Bounded cursors** — regression tests pinning the
  :class:`~repro.storage.trie.BoundedTrieIterator` contract on all three
  cursor classes: a range-bounded seek at the top trie level must never leak
  keys outside ``[lo, hi)``, not even after ``up()``/``next()`` across level
  boundaries, and not around tombstones sitting exactly at range edges.
* **Thread safety** — concurrent executions of one :class:`PreparedQuery`
  and concurrent ``Database.view_index`` fills must produce correct results
  with no duplicate index builds (the database lock serialises cache fills,
  so the allowed race window is zero).
"""

import threading

import pytest

from repro.engine import QueryEngine
from repro.engine.executors import registered_algorithms
from repro.engine.parallel import ParallelExecutor, PartitionPlanner
from repro.query.parser import parse_query
from repro.query.patterns import cycle_query, path_query
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.storage.trie import (
    BoundedTrieIterator,
    LsmTrieIndex,
    NodeTrieIndex,
    TrieIndex,
)

from tests.conftest import brute_force_evaluate, random_edge_database

BACKENDS = ("threads", "processes")
INNER_ALGORITHMS = ("lftj", "generic_join")
WORKER_COUNTS = (1, 2, 4, 7)


def _edge_database(encode: bool) -> Database:
    base = random_edge_database(num_nodes=18, num_edges=55, seed=23)
    return Database(list(base), name=f"par-{'enc' if encode else 'raw'}", encode=encode)


def _query_order_rows(result, query):
    """Result rows re-projected into the query's textual variable order."""
    by_name = {variable: index for index, variable in enumerate(result.variable_order)}
    positions = [by_name[variable] for variable in query.variables]
    return [tuple(row[p] for p in positions) for row in result.rows]


@pytest.fixture(scope="module", params=[True, False], ids=["encoded", "raw"])
def engine_and_serial(request):
    """One engine per encoding mode plus the serial triangle baseline."""
    database = _edge_database(request.param)
    engine = QueryEngine(database)
    query = cycle_query(3)
    serial = {
        algorithm: engine.evaluate(query, algorithm=algorithm)
        for algorithm in INNER_ALGORITHMS
    }
    yield engine, query, serial
    database.close_pools()


class TestDifferential:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("algorithm", INNER_ALGORITHMS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_parallel_matches_serial(self, engine_and_serial, backend, algorithm, workers):
        engine, query, serial_results = engine_and_serial
        serial = serial_results[algorithm]
        result = engine.evaluate(
            query, algorithm=algorithm, parallel=workers, parallel_backend=backend
        )
        assert result.count == serial.count
        assert sorted(result.rows) == sorted(serial.rows)
        assert result.metadata["parallel"] is True
        assert result.metadata["workers"] == (1 if workers == 1 else workers)
        assert result.metadata["parallel_mode"] == "morsel"
        assert result.metadata["inner_algorithm"] == algorithm
        assert sum(result.metadata["shard_results"]) == result.count
        # The legacy "shards" key aliases the planned morsel count.
        assert result.metadata["shards"] == result.metadata["morsels"]
        assert (
            len(result.metadata["partition_bounds"])
            == result.metadata["morsels"] - 1
        )

    @pytest.mark.parametrize("mode", ["morsel", "static"])
    def test_lftj_merge_preserves_serial_row_order(self, engine_and_serial, mode):
        """Deterministic merge: range concatenation == the serial row stream."""
        engine, query, serial_results = engine_and_serial
        serial = serial_results["lftj"]
        result = engine.evaluate(
            query, algorithm="lftj", parallel=4, parallel_mode=mode
        )
        assert result.rows == serial.rows

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_ranges_are_harmless(self, backend):
        """Static mode: more ranges than distinct top-level keys -> some
        ranges are deliberately empty (morsel mode's key floor would simply
        plan fewer morsels instead)."""
        rows = [(1, 2), (2, 3), (3, 1)]
        database = Database([Relation("E", ("s", "t"), rows)], name="tiny")
        engine = QueryEngine(database)
        query = cycle_query(3)
        serial = engine.count(query, algorithm="lftj")
        result = engine.count(
            query,
            algorithm="lftj",
            parallel=7,
            parallel_backend=backend,
            parallel_mode="static",
        )
        assert result.count == serial.count == 3  # one triangle, 3 rotations
        assert result.metadata["morsels"] == 7
        assert 0 in result.metadata["shard_results"]
        database.close_pools()

    def test_tiny_domain_caps_morsel_count(self):
        """Morsel mode's per-range key floor keeps tiny domains whole."""
        rows = [(1, 2), (2, 3), (3, 1)]
        database = Database([Relation("E", ("s", "t"), rows)], name="tiny")
        engine = QueryEngine(database)
        result = engine.count(cycle_query(3), algorithm="lftj", parallel=7)
        assert result.count == 3
        assert result.metadata["morsels"] == 1  # 3 keys < MIN_MORSEL_KEYS
        database.close_pools()

    def test_parallel_counts_on_longer_pattern(self, engine_and_serial):
        engine, _query, _serial = engine_and_serial
        query = path_query(4)
        serial = engine.count(query, algorithm="lftj")
        for algorithm in INNER_ALGORITHMS:
            result = engine.count(query, algorithm=algorithm, parallel=3)
            assert result.count == serial.count

    def test_parallel_agrees_with_brute_force(self):
        database = _edge_database(encode=True)
        engine = QueryEngine(database)
        query = parse_query("E(x, y), E(y, z), E(x, z)", name="tri-dag")
        expected = brute_force_evaluate(query, database)
        for algorithm in INNER_ALGORITHMS:
            result = engine.evaluate(query, algorithm=algorithm, parallel=4)
            assert set(_query_order_rows(result, query)) == expected

    def test_count_only_parallel_runs_never_decode(self):
        database = _edge_database(encode=True)
        engine = QueryEngine(database)
        result = engine.count(cycle_query(3), algorithm="plftj", parallel=4)
        assert result.metadata["encoded"] is True
        assert database.dictionary.decodes == 0

    def test_plftj_registered_and_runs(self, engine_and_serial):
        engine, query, serial_results = engine_and_serial
        assert "plftj" in registered_algorithms()
        result = engine.count(query, algorithm="plftj", parallel=2)
        assert result.count == serial_results["lftj"].count
        assert result.metadata["parallel"] is True

    def test_processes_backend_reports_itself(self, engine_and_serial):
        engine, query, _serial = engine_and_serial
        result = engine.count(
            query, algorithm="lftj", parallel=2, parallel_backend="processes"
        )
        assert result.metadata["parallel_backend"] == "processes"

    def test_single_worker_runs_inline(self, engine_and_serial):
        engine, query, serial_results = engine_and_serial
        result = engine.count(
            query, algorithm="lftj", parallel=1, parallel_backend="processes"
        )
        assert result.count == serial_results["lftj"].count
        # One worker never pays for a pool, whatever backend was asked for.
        assert result.metadata["parallel_backend"] == "threads"
        assert result.metadata["workers"] == 1
        assert result.metadata["morsels"] == 1

    def test_morsel_metadata_reports_scheduling(self, engine_and_serial):
        engine, query, _serial = engine_and_serial
        result = engine.count(query, algorithm="lftj", parallel=2)
        metadata = result.metadata
        assert metadata["morsels"] >= metadata["workers"] == 2
        assert metadata["tasks_executed"] >= metadata["morsels"]
        assert metadata["steals"] >= 0 and metadata["splits"] >= 0
        assert len(metadata["worker_busy_seconds"]) == 2
        assert 0.0 <= metadata["utilization"] <= 1.0
        assert metadata["partition_skew"] >= 1.0
        assert metadata["morsel_skew"] >= 1.0


class TestParameterSurface:
    def test_clftj_accepts_parallel(self, engine_and_serial):
        engine, query, serial = engine_and_serial
        result = engine.count(query, algorithm="clftj", parallel=2)
        assert result.count == serial["lftj"].count
        assert result.metadata["workers"] == 2

    def test_clftj_rejects_explicit_cache_with_parallel(self, engine_and_serial):
        engine, query, _serial = engine_and_serial
        from repro.core.cache import AdhesionCache

        with pytest.raises(ValueError, match="worker"):
            engine.count(
                query, algorithm="clftj", parallel=2, cache=AdhesionCache()
            )

    def test_parallel_backend_requires_parallel(self, engine_and_serial):
        engine, query, _serial = engine_and_serial
        with pytest.raises(ValueError, match="parallel_backend requires parallel"):
            engine.count(query, algorithm="lftj", parallel_backend="threads")

    def test_parallel_mode_requires_parallel(self, engine_and_serial):
        engine, query, _serial = engine_and_serial
        with pytest.raises(ValueError, match="parallel_mode requires parallel"):
            engine.count(query, algorithm="lftj", parallel_mode="static")

    def test_unknown_parallel_mode_rejected(self, engine_and_serial):
        engine, query, _serial = engine_and_serial
        with pytest.raises(ValueError, match="unknown parallel mode"):
            engine.count(
                query, algorithm="lftj", parallel=2, parallel_mode="chaotic"
            )

    def test_parallel_false_means_serial(self, engine_and_serial):
        engine, query, serial_results = engine_and_serial
        result = engine.count(query, algorithm="lftj", parallel=False)
        assert result.count == serial_results["lftj"].count
        assert "workers" not in result.metadata  # a genuinely serial run

    def test_auto_rejects_parallel(self, engine_and_serial):
        engine, query, _serial = engine_and_serial
        with pytest.raises(ValueError, match="auto"):
            engine.count(query, algorithm="auto", parallel=2)

    def test_invalid_worker_count_and_backend(self, engine_and_serial):
        engine, query, _serial = engine_and_serial
        with pytest.raises(ValueError, match="worker count"):
            engine.count(query, algorithm="lftj", parallel=0)
        with pytest.raises(ValueError, match="unknown parallel backend"):
            engine.count(query, algorithm="lftj", parallel=2, parallel_backend="mpi")

    def test_parallel_executor_rejects_uncuttable_inner(self, engine_and_serial):
        engine, query, _serial = engine_and_serial
        with pytest.raises(ValueError, match="cannot run partition-parallel"):
            ParallelExecutor(query, engine.database, inner="ytd")

    def test_parallel_clftj_requires_a_plan(self, engine_and_serial):
        engine, query, _serial = engine_and_serial
        with pytest.raises(ValueError, match="needs an execution plan"):
            ParallelExecutor(query, engine.database, inner="clftj")

    def test_auto_worker_count_keeps_tiny_queries_serial(self):
        """The selector charges a per-worker engagement cost."""
        rows = [(1, 2), (2, 3), (3, 1)]
        database = Database([Relation("E", ("s", "t"), rows)], name="tiny")
        engine = QueryEngine(database)
        workers = engine.selector.recommend_workers(
            cycle_query(3), cycle_query(3).variables, available=8
        )
        assert workers == 1
        result = engine.count(cycle_query(3), algorithm="lftj", parallel=True)
        assert result.metadata["workers"] == 1
        database.close_pools()

    def test_auto_worker_count_scales_with_work(self):
        database = _edge_database(encode=True)
        engine = QueryEngine(database)
        query = path_query(5)
        workers = engine.selector.recommend_workers(
            query, query.variables, available=4
        )
        assert workers > 1
        morsels = engine.selector.recommend_morsels(
            query, query.variables, workers=workers
        )
        assert morsels >= workers

    def test_recommended_workers_never_exceed_available(self):
        database = _edge_database(encode=True)
        engine = QueryEngine(database)
        query = path_query(5)
        assert (
            engine.selector.recommend_workers(query, query.variables, available=2)
            <= 2
        )

    def test_explain_shows_partition_bounds(self, engine_and_serial):
        engine, query, _serial = engine_and_serial
        text = engine.explain(query, algorithm="plftj", parallel=3)
        assert "parallel: backend=threads, mode=morsel, workers=3" in text
        assert "range(s) on variable" in text
        assert "bounds:" in text

    def test_explain_shows_static_mode(self, engine_and_serial):
        engine, query, _serial = engine_and_serial
        text = engine.explain(
            query, algorithm="plftj", parallel=3, parallel_mode="static"
        )
        assert "mode=static, workers=3, 3 range(s)" in text

    def test_cold_explain_neither_mutates_nor_poisons(self):
        """explain() on a cold database must not grow the dictionary, and
        its degenerate no-index partition plan must not be memoised — the
        next execution re-plans with real bounds and explain then agrees."""
        database = _edge_database(encode=True)
        engine = QueryEngine(database)
        query = cycle_query(3)
        assert len(database.dictionary) == 0
        engine.explain(query, algorithm="plftj", parallel=4)
        assert len(database.dictionary) == 0  # no side effects
        result = engine.count(query, algorithm="plftj", parallel=4)
        assert result.metadata["morsels"] > 1
        assert (
            len(result.metadata["partition_bounds"])
            == result.metadata["morsels"] - 1
        )
        text = engine.explain(query, algorithm="plftj", parallel=4)
        assert str(result.metadata["partition_bounds"]) in text
        database.close_pools()


class TestPartitionPlanner:
    def _database(self):
        return _edge_database(encode=True)

    def test_ranges_tile_the_key_space(self):
        database = self._database()
        engine = QueryEngine(database)
        query = cycle_query(3)
        engine.count(query, algorithm="lftj")  # build indexes/dictionary
        plan = PartitionPlanner(database, engine.selector.catalog).plan(
            query, query.variables, 4
        )
        ranges = plan.ranges()
        assert len(ranges) == 4
        assert ranges[0][0] is None and ranges[-1][1] is None
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo  # adjacent ranges share their cut: no gaps
        bounds = list(plan.bounds)
        assert bounds == sorted(bounds)
        assert plan.source == "statistics"
        assert plan.num_shards == 4

    def test_single_shard_plan(self):
        database = self._database()
        plan = PartitionPlanner(database).plan(cycle_query(3), cycle_query(3).variables, 1)
        assert plan.bounds == ()
        assert plan.ranges() == [(None, None)]
        assert plan.source == "single"

    def test_weighted_split_isolates_heavy_keys(self):
        """A hub carrying most of the mass gets a shard of its own."""
        rows = [(0, target) for target in range(1, 60)]  # hub node 0
        rows += [(source, source + 1) for source in range(1, 6)]
        database = Database([Relation("E", ("s", "t"), rows)], name="skew", encode=False)
        query = cycle_query(3)
        plan = PartitionPlanner(database).plan(query, query.variables, 2)
        assert plan.source == "statistics"
        # All of node 0's weight lands in shard 0; the cut sits right above it.
        assert plan.weights[0] >= plan.weights[1]
        assert plan.bounds[0] == 1

    def test_constant_bearing_atoms_still_partition(self):
        """Base-relation frequencies overapproximate a selected view's
        domain — good enough to cut ranges (only balance blurs)."""
        rows = [(value, value % 3) for value in range(20)]
        database = Database([Relation("R", ("a", "b"), rows)], name="consts")
        query = parse_query("R(x, 1)", name="const-query")
        engine = QueryEngine(database)
        serial = engine.count(query, algorithm="lftj")
        plan = PartitionPlanner(database).plan(query, query.variables, 3)
        assert plan.source == "statistics"
        assert len(plan.bounds) == 2
        result = engine.count(query, algorithm="lftj", parallel=3)
        assert result.count == serial.count

    def test_equal_width_fallback_without_statistics(self):
        """No covering atom offers any frequencies (empty relation) but the
        dictionary has codes -> equal-width code ranges."""
        populated = Relation("S", ("a", "b"), [(v, v + 1) for v in range(20)])
        empty = Relation("R", ("a", "b"), [])
        database = Database([populated, empty], name="fallback")
        engine = QueryEngine(database)
        engine.count(parse_query("S(x, y)", name="warm"), algorithm="lftj")
        query = parse_query("R(x, y)", name="empty-query")
        plan = PartitionPlanner(database).plan(query, query.variables, 3)
        assert plan.source == "equal-width"
        assert len(plan.bounds) == 2
        result = engine.count(query, algorithm="lftj", parallel=3)
        assert result.count == 0
        assert result.metadata["shards"] == 3

    def test_small_domains_pad_with_empty_shards(self):
        rows = [(1, 2), (2, 3), (3, 1)]
        database = Database([Relation("E", ("s", "t"), rows)], name="tiny", encode=False)
        query = cycle_query(3)
        plan = PartitionPlanner(database).plan(query, query.variables, 7)
        assert plan.num_shards == 7
        bounds = list(plan.bounds)
        assert bounds == sorted(bounds)
        assert len(bounds) == 6  # padded; duplicates make empty shards


# ---------------------------------------------------------------------------
# Bounded-cursor contract.
# ---------------------------------------------------------------------------

ROWS = [
    (1, 10), (1, 11),
    (3, 30),
    (5, 50), (5, 51),
    (7, 70),
    (9, 90), (9, 91),
]


def _walk_top_level(iterator):
    """Keys visible at the first level via the plain next() protocol."""
    keys = []
    iterator.open()
    while not iterator.at_end():
        keys.append(iterator.key())
        iterator.next()
    iterator.up()
    return keys


def _walk_with_descents(iterator):
    """Top-level keys plus children, crossing level boundaries repeatedly."""
    seen = []
    iterator.open()
    while not iterator.at_end():
        top = iterator.key()
        children = []
        iterator.open()
        while not iterator.at_end():
            children.append(iterator.key())
            iterator.next()
        iterator.up()          # back to the bounded level
        seen.append((top, tuple(children)))
        iterator.next()        # the bound must still hold after up()+next()
    iterator.up()
    return seen


def _cursor_factories():
    columnar = TrieIndex.from_tuples(ROWS)
    nodes = NodeTrieIndex.from_tuples(ROWS)
    lsm = LsmTrieIndex(TrieIndex.from_tuples(ROWS))
    lsm.apply_delta(inserted=[(4, 40)], deleted=[(3, 30)])
    return {
        "TrieIterator": (columnar.iterator, [1, 3, 5, 7, 9]),
        "NodeTrieIterator": (nodes.iterator, [1, 3, 5, 7, 9]),
        "MergedTrieIterator": (lsm.iterator, [1, 4, 5, 7, 9]),
    }


@pytest.mark.parametrize("cursor", ["TrieIterator", "NodeTrieIterator", "MergedTrieIterator"])
class TestBoundedCursorContract:
    def test_next_walk_stays_in_range(self, cursor):
        factory, keys = _cursor_factories()[cursor]
        for lo, hi in [(None, None), (3, 8), (None, 5), (5, None), (2, 2), (0, 1)]:
            bounded = BoundedTrieIterator(factory(), lo, hi)
            expected = [
                key for key in keys
                if (lo is None or key >= lo) and (hi is None or key < hi)
            ]
            assert _walk_top_level(bounded) == expected, (lo, hi)

    def test_no_leak_across_level_boundaries(self, cursor):
        """The satellite bug class: up()/next() after a descent must not
        escape [lo, hi)."""
        factory, keys = _cursor_factories()[cursor]
        bounded = BoundedTrieIterator(factory(), 3, 8)
        walked = _walk_with_descents(bounded)
        assert [top for top, _children in walked] == [
            key for key in keys if 3 <= key < 8
        ]
        for _top, children in walked:
            assert children  # every surviving key still exposes its subtree

    def test_seek_clamps_to_lower_bound(self, cursor):
        factory, keys = _cursor_factories()[cursor]
        bounded = BoundedTrieIterator(factory(), 5, None)
        bounded.open()
        assert bounded.key() == 5  # open() lands at lo, not the first key
        bounded = BoundedTrieIterator(factory(), 5, None)
        bounded.open()
        bounded.seek(2)  # below lo: clamped, must not move before lo
        assert bounded.key() == 5

    def test_seek_past_upper_bound_ends_level(self, cursor):
        factory, _keys = _cursor_factories()[cursor]
        bounded = BoundedTrieIterator(factory(), None, 6)
        bounded.open()
        bounded.seek(7)
        assert bounded.at_end()
        with pytest.raises(RuntimeError):
            bounded.key()
        with pytest.raises(RuntimeError):
            bounded.next()
        with pytest.raises(RuntimeError):
            bounded.seek(8)

    def test_reopen_after_reset(self, cursor):
        factory, keys = _cursor_factories()[cursor]
        bounded = BoundedTrieIterator(factory(), 3, 8)
        _walk_top_level(bounded)
        bounded.reset()
        expected = [key for key in keys if 3 <= key < 8]
        assert _walk_top_level(bounded) == expected


class TestBoundedCursorEdges:
    def test_tombstone_at_lower_range_edge(self):
        """A fully-deleted key sitting exactly at lo must stay invisible."""
        lsm = LsmTrieIndex(TrieIndex.from_tuples(ROWS))
        lsm.apply_delta(deleted=[(3, 30)])
        bounded = BoundedTrieIterator(lsm.iterator(), 3, 8)
        assert _walk_top_level(bounded) == [5, 7]

    def test_tombstone_at_upper_range_edge(self):
        """Deleting the last in-range key must not resurrect out-of-range ones."""
        lsm = LsmTrieIndex(TrieIndex.from_tuples(ROWS))
        lsm.apply_delta(deleted=[(7, 70)])
        bounded = BoundedTrieIterator(lsm.iterator(), 3, 8)
        assert _walk_top_level(bounded) == [3, 5]

    def test_delta_insert_exactly_at_bounds(self):
        lsm = LsmTrieIndex(TrieIndex.from_tuples(ROWS))
        lsm.apply_delta(inserted=[(3, 31), (8, 80)])  # at lo, and at hi (excluded)
        bounded = BoundedTrieIterator(lsm.iterator(), 3, 8)
        walked = _walk_with_descents(bounded)
        assert [top for top, _ in walked] == [3, 5, 7]
        assert walked[0][1] == (30, 31)

    def test_encoded_current_run_is_clamped(self):
        """The batched-kernel hook must see the same restriction."""
        relation = Relation("E", ("s", "t"), ROWS)
        database = Database([relation], name="runs")
        trie = database.trie_index("E", (0, 1))
        dictionary = database.dictionary
        lo = dictionary.encode(5)
        hi = dictionary.encode(9)
        lo, hi = min(lo, hi), max(lo, hi)
        bounded = BoundedTrieIterator(trie.iterator(), lo, hi)
        bounded.open()
        run = bounded.current_run()
        assert run is not None
        keys, _view, run_lo, run_hi = run
        assert all(lo <= keys[i] < hi for i in range(run_lo, run_hi))

    def test_bound_level_must_be_positive(self):
        trie = TrieIndex.from_tuples(ROWS)
        with pytest.raises(ValueError, match="bound level"):
            BoundedTrieIterator(trie.iterator(), 1, 2, level=0)


# ---------------------------------------------------------------------------
# Thread-safety audit.
# ---------------------------------------------------------------------------


def _run_threads(worker, count):
    """Start ``count`` threads behind a barrier; re-raise any worker error."""
    barrier = threading.Barrier(count)
    errors = []

    def wrapped(index):
        try:
            barrier.wait()
            worker(index)
        except BaseException as error:  # noqa: BLE001 - surfaced to the test
            errors.append(error)

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestThreadSafety:
    def test_concurrent_index_cache_fills_build_once(self):
        """The database lock makes the duplicate-build race window zero."""
        database = _edge_database(encode=True)
        built = []

        def worker(_index):
            built.append(database.trie_index("E", (0, 1)))

        _run_threads(worker, 8)
        assert database.index_builds == 1
        assert database.index_cache_hits == 7
        assert all(index is built[0] for index in built)

    def test_concurrent_view_index_fills_across_kinds(self):
        database = _edge_database(encode=True)
        engine = QueryEngine(database)
        query = cycle_query(3)

        def worker(index):
            algorithm = "lftj" if index % 2 == 0 else "generic_join"
            result = engine.count(query, algorithm=algorithm)
            assert result.count >= 0

        _run_threads(worker, 8)
        # The triangle needs two column orders per index kind ((0,1) and
        # (1,0) for the E(x3, x1) atom): 2 tries + 2 prefix indexes, each
        # built exactly once despite 8 racing threads.
        assert database.index_builds == 4

    @pytest.mark.parametrize("algorithm", ["lftj", "generic_join", "clftj"])
    def test_concurrent_prepared_executions(self, algorithm):
        database = _edge_database(encode=True)
        engine = QueryEngine(database)
        query = cycle_query(3)
        serial = engine.count(query, algorithm=algorithm).count
        prepared = engine.prepare(query, algorithm=algorithm)
        counts = []

        def worker(_index):
            for _ in range(3):
                counts.append(prepared.count().count)

        _run_threads(worker, 6)
        assert counts == [serial] * 18
        assert prepared.executions == 18

    def test_concurrent_parallel_executions_of_one_prepared_handle(self):
        database = _edge_database(encode=True)
        engine = QueryEngine(database)
        query = cycle_query(3)
        serial = engine.count(query, algorithm="lftj").count
        prepared = engine.prepare(query, algorithm="lftj", parallel=2)
        builds_before = database.index_builds
        counts = []

        def worker(_index):
            counts.append(prepared.count().count)

        _run_threads(worker, 4)
        assert counts == [serial] * 4
        assert database.index_builds == builds_before  # warm: zero rebuilds


class TestForkSafety:
    def test_fork_worker_reinitialises_inherited_locks(self):
        """A fork can happen while another parent thread holds the database
        lock; that thread does not exist in the child, so the worker entry
        point replaces the lock (``reinitialise_child_locks``) before
        touching the index cache or it deadlocks.

        Simulated in-process: the lock is left held by a thread that has
        already exited (exactly what the child observes after the fork),
        and the morsel runner must still complete after reinitialisation.
        """
        from repro.engine.parallel import MorselSpec, _run_morsel
        from repro.engine.pool import MorselTask, reinitialise_child_locks

        database = _edge_database(encode=True)
        engine = QueryEngine(database)
        query = cycle_query(3)
        serial = engine.count(query, algorithm="lftj").count

        stuck_lock = threading.RLock()
        holder = threading.Thread(target=stuck_lock.acquire)
        holder.start()
        holder.join()
        database._lock = stuck_lock  # held by a thread that no longer exists
        reinitialise_child_locks(database)  # what _fork_worker_main does first

        spec = MorselSpec(
            query=query,
            variable_order=tuple(query.variables),
            inner="lftj",
            compile=None,
            run_mode="count",
        )
        outcomes = []
        worker = threading.Thread(
            target=lambda: outcomes.append(
                _run_morsel(database, spec, MorselTask(0, (), None, None))
            ),
            daemon=True,
        )
        worker.start()
        worker.join(timeout=10)
        assert not worker.is_alive(), "morsel runner deadlocked on inherited lock"
        assert len(outcomes) == 1
        assert outcomes[0].value == serial  # full-range morsel


class TestPreparedParallel:
    def test_prepared_parallel_reexecutes_warm(self):
        database = _edge_database(encode=True)
        engine = QueryEngine(database)
        query = cycle_query(3)
        serial = engine.count(query, algorithm="lftj").count
        prepared = engine.prepare(
            query, algorithm="lftj", parallel=3, parallel_backend="processes"
        )
        first = prepared.count()
        second = prepared.count()
        assert first.count == second.count == serial
        assert second.metadata["workers"] == 3
        assert second.metadata["index_builds"] == 0
        database.close_pools()

    def test_parallel_runs_leave_clftj_warm_caches_alone(self):
        """Parallel traffic must not disturb a clftj handle's adhesion cache."""
        database = _edge_database(encode=True)
        engine = QueryEngine(database)
        query = path_query(4)
        cached = engine.prepare(query, algorithm="clftj")
        warmup = cached.count()
        parallel = engine.prepare(query, algorithm="lftj", parallel=2)
        parallel_result = parallel.count()
        warm = cached.count()
        assert warm.count == warmup.count == parallel_result.count
        assert warm.counter.cache_hits > 0  # the warm cache still serves hits
