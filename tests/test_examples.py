"""Smoke tests: every example script runs end to end and prints its headline output."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXPECTED_SNIPPETS = {
    "quickstart.py": "5-cycle count results",
    "motif_counting.py": "speedups over LFTJ",
    "cache_budgeting.py": "cache-capacity sweep",
    "decomposition_explorer.py": "enumerating decompositions",
    "weighted_aggregates.py": "semiring aggregate results",
}


@pytest.mark.parametrize("script_name", sorted(EXPECTED_SNIPPETS))
def test_example_runs_and_prints_expected_output(capsys, script_name):
    script = EXAMPLES_DIR / script_name
    assert script.exists(), f"example {script_name} is missing"
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert EXPECTED_SNIPPETS[script_name] in output
    assert "Traceback" not in output


def test_every_example_has_a_docstring_with_run_instructions():
    for script in sorted(EXAMPLES_DIR.glob("*.py")):
        text = script.read_text(encoding="utf-8")
        assert text.lstrip().startswith('"""'), f"{script.name} lacks a module docstring"
        assert "python examples/" in text, f"{script.name} lacks run instructions"
