"""Integer dictionary encoding: unit, differential and zero-decode tests.

The encoded execution path (PR 4) must be observationally equivalent to the
raw-object path — same counts, same decoded row sets — across every
algorithm, every backend regime (fresh builds, shared caches, the PR-3
delta/LSM path) and both kernel flavours (numpy and pure Python).  The raw
path (``Database(..., encode=False)``) is the differential-testing oracle
throughout.
"""

import random

import pytest

import repro.core.leapfrog as leapfrog_module
from repro.core.clftj import CachedLeapfrogTrieJoin
from repro.core.lftj import LeapfrogTrieJoin
from repro.decomposition.generic import generic_decompose
from repro.engine.engine import QueryEngine
from repro.query.parser import parse_query
from repro.query.patterns import cycle_query, path_query
from repro.storage.database import Database
from repro.storage.dictionary import ValueDictionary, ValueEncodingError
from repro.storage.relation import Relation
from repro.storage.trie import TrieIndex


# ---------------------------------------------------------------------------
# ValueDictionary unit behaviour
# ---------------------------------------------------------------------------


class TestValueDictionary:
    def test_codes_are_dense_and_stable(self):
        dictionary = ValueDictionary()
        first = dictionary.encode("a")
        second = dictionary.encode("b")
        assert (first, second) == (0, 1)
        # Append-only: re-encoding returns the original code forever.
        assert dictionary.encode("a") == first
        assert dictionary.encode("c") == 2
        assert len(dictionary) == 3

    def test_decode_round_trip_and_counting(self):
        dictionary = ValueDictionary()
        row = ("x", 7, "y")
        coded = dictionary.encode_row(row)
        assert dictionary.decodes == 0
        assert dictionary.decode_row(coded) == row
        assert dictionary.decodes == 3
        assert dictionary.decode(coded[1]) == 7
        assert dictionary.decodes == 4

    def test_code_of_never_appends(self):
        dictionary = ValueDictionary()
        assert dictionary.code_of("missing") is None
        assert len(dictionary) == 0
        dictionary.encode("present")
        assert dictionary.code_of("present") == 0

    def test_try_encode_row_rejects_unseen_values(self):
        dictionary = ValueDictionary()
        dictionary.encode_row((1, 2))
        assert dictionary.try_encode_row((1, 2)) == (0, 1)
        assert dictionary.try_encode_row((1, 99)) is None
        assert len(dictionary) == 2  # the miss appended nothing

    def test_unhashable_value_raises_encoding_error(self):
        dictionary = ValueDictionary()
        with pytest.raises(ValueEncodingError):
            dictionary.encode([1, 2])

    def test_unknown_code_raises(self):
        dictionary = ValueDictionary()
        with pytest.raises(ValueError):
            dictionary.decode(5)


# ---------------------------------------------------------------------------
# Storage-layer behaviour of encoded indexes
# ---------------------------------------------------------------------------


def _edge_db(edges, encode=True, name="g"):
    return Database(
        [Relation("E", ("src", "dst"), edges)], name=name, encode=encode
    )


class TestEncodedStorage:
    def test_database_tries_are_encoded_by_default(self):
        db = _edge_db([("a", "b"), ("b", "c")])
        trie = db.trie_index("E", (0, 1))
        assert trie.encoded
        assert trie.main.encoded
        # The public row/membership surface stays in value space.
        assert sorted(trie.iter_rows()) == [("a", "b"), ("b", "c")]
        assert trie.contains(("a", "b"))
        assert not trie.contains(("a", "zzz"))

    def test_encoded_key_columns_are_int_arrays(self):
        db = _edge_db([(10, 20), (10, 30)])
        trie = db.trie_index("E", (0, 1))
        for level in trie.main._keys:
            assert level.typecode == "q"

    def test_encode_false_gives_raw_tries(self):
        db = _edge_db([("a", "b")], encode=False)
        trie = db.trie_index("E", (0, 1))
        assert not trie.encoded
        assert db.index_dictionary() is None

    def test_disable_encoding_drops_indexes_and_goes_raw(self):
        db = _edge_db([(1, 2), (2, 3), (3, 1)])
        query = cycle_query(3)
        before = LeapfrogTrieJoin(query, db).count()
        assert db.encoding_active
        dropped = db.disable_encoding()
        assert dropped > 0
        assert not db.encoding_active
        joiner = LeapfrogTrieJoin(query, db)
        assert not joiner.encoded
        assert joiner.count() == before

    def test_unencodable_input_falls_back_to_raw_path(self):
        db = _edge_db([(1, 2), (2, 3), (3, 1)])

        class _Poisoned(ValueDictionary):
            def encode(self, value):
                raise ValueEncodingError("synthetic un-encodable value")

        db.dictionary = _Poisoned()
        joiner = LeapfrogTrieJoin(cycle_query(3), db)
        assert not joiner.encoded
        # The directed cycle 1->2->3->1 under all three rotations.
        assert joiner.count() == 3
        assert not db.encoding_active
        assert db.encoding_fallbacks == 1

    def test_disable_encoding_invalidates_prepared_warm_caches(self):
        """Code-space adhesion-cache keys must not survive the raw flip.

        Regression: a prepared CLFTJ handle's warm cache holds keys in
        dictionary-code space; after ``disable_encoding()`` raw value-space
        probes collided with stale code keys and returned wrong counts.
        """
        rng = random.Random(13)
        edges = _random_graph_edges(rng, list(range(12)), 40)
        db = _edge_db(edges)
        engine = QueryEngine(db)
        prepared = engine.prepare(path_query(3), algorithm="clftj")
        first = prepared.count()
        warm = prepared.count()
        assert warm.count == first.count
        db.disable_encoding()
        after = prepared.count()
        assert after.count == first.count
        assert after.metadata["encoded"] is False

    def test_lftj_clftj_recursion_counters_agree_with_unary_leaf_atom(self):
        """Regression: the inlined leaf fusion double-counted recursive calls
        when a participant (here a unary atom on the last variable) cannot
        expose a child run and the real recursion has to run instead."""
        from repro.core.instrumentation import OperationCounter

        rng = random.Random(23)
        relations = [
            Relation("R", ("a", "b"), _random_graph_edges(rng, list(range(10)), 30)),
            Relation("S", ("b", "c"), _random_graph_edges(rng, list(range(10)), 30)),
            Relation("U", ("c",), [(value,) for value in range(0, 10, 2)]),
        ]
        query = parse_query("R(x, y), S(y, z), U(z)", name="unary-leaf")
        encoded_db = Database(relations, name="enc")
        raw_db = Database(
            [Relation(r.name, r.attributes, r.tuples) for r in relations],
            name="raw", encode=False,
        )
        encoded_counter, raw_counter = OperationCounter(), OperationCounter()
        encoded = LeapfrogTrieJoin(query, encoded_db, counter=encoded_counter).count()
        raw = LeapfrogTrieJoin(query, raw_db, counter=raw_counter).count()
        assert encoded == raw
        assert encoded_counter.recursive_calls == raw_counter.recursive_calls
        assert encoded_counter.results_emitted == raw_counter.results_emitted

    def test_delta_updates_append_codes_never_recode(self):
        db = _edge_db([("a", "b"), ("b", "c")])
        db.trie_index("E", (0, 1))  # populate the cache
        code_a = db.dictionary.code_of("a")
        db.insert("E", [("c", "zebra")])
        assert db.dictionary.code_of("a") == code_a
        assert db.dictionary.code_of("zebra") is not None
        trie = db.trie_index("E", (0, 1))
        assert sorted(trie.iter_rows()) == [
            ("a", "b"), ("b", "c"), ("c", "zebra"),
        ]


class TestGallopingSeek:
    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_seek_matches_bisect_oracle(self, seed):
        rng = random.Random(seed)
        values = sorted(rng.sample(range(0, 5000), 400))
        trie = TrieIndex.from_tuples([(value,) for value in values])
        iterator = trie.iterator()
        iterator.open()
        position = 0
        for _ in range(100):
            target = rng.randrange(0, 5200)
            if iterator.at_end():
                break
            current = iterator.key()
            if target < current:
                target = current  # seeks never move backwards
            iterator.seek(target)
            import bisect
            expected = bisect.bisect_left(values, target, position)
            position = expected
            if expected >= len(values):
                assert iterator.at_end()
                break
            assert iterator.key() == values[expected]


# ---------------------------------------------------------------------------
# Differential: encoded vs raw across algorithms, domains and updates
# ---------------------------------------------------------------------------

ALGORITHMS = ("lftj", "clftj", "generic_join", "ytd", "pairwise")


def _random_graph_edges(rng, nodes, num_edges):
    edges = set()
    while len(edges) < num_edges:
        src, dst = rng.choice(nodes), rng.choice(nodes)
        if src != dst:
            edges.add((src, dst))
    return sorted(edges)


def _mixed_databases(seed):
    """Identical encoded/raw database pairs over mixed str/int domains.

    ``E`` is a graph over string node ids (so its trie level order by code
    differs wildly from value order); ``R``/``S`` join a string column
    between an int column on either side.
    """
    rng = random.Random(seed)
    str_nodes = [f"v{index:02d}" for index in range(14)]
    rng.shuffle(str_nodes)  # first-encounter order != sorted order
    edges = _random_graph_edges(rng, str_nodes, 60)
    r_rows = [
        (rng.randrange(0, 9), rng.choice(str_nodes)) for _ in range(40)
    ]
    s_rows = [
        (rng.choice(str_nodes), rng.randrange(0, 9)) for _ in range(40)
    ]
    relations = [
        Relation("E", ("src", "dst"), edges),
        Relation("R", ("a", "b"), r_rows),
        Relation("S", ("b", "c"), s_rows),
    ]

    def build(encode):
        return Database(
            [Relation(rel.name, rel.attributes, rel.tuples) for rel in relations],
            name=f"mixed-{seed}-{'enc' if encode else 'raw'}",
            encode=encode,
        )

    return build(True), build(False)


def _queries():
    return [
        cycle_query(3),
        path_query(3),
        parse_query("R(x, y), S(y, z)", name="mixed-join"),
        parse_query("E(x, y), E(y, x)", name="sym"),
        parse_query("E(x, x)", name="loops"),
    ]


class TestDifferentialEncodedVsRaw:
    @pytest.mark.parametrize("seed", [0, 1, 2026])
    def test_counts_and_rows_agree_for_every_algorithm(self, seed):
        encoded_db, raw_db = _mixed_databases(seed)
        encoded_engine, raw_engine = QueryEngine(encoded_db), QueryEngine(raw_db)
        for query in _queries():
            for algorithm in ALGORITHMS:
                encoded = encoded_engine.evaluate(query, algorithm=algorithm)
                raw = raw_engine.evaluate(query, algorithm=algorithm)
                assert encoded.count == raw.count, (query.name, algorithm)
                # Decoded tuple sets must match exactly (order may differ:
                # the encoded path streams in code order).
                key_enc = {
                    tuple(row) for row in encoded.rows
                }
                key_raw = {tuple(row) for row in raw.rows}
                assert key_enc == key_raw, (query.name, algorithm)

    @pytest.mark.parametrize("seed", [5, 17])
    def test_agreement_survives_seeded_update_streams(self, seed):
        encoded_db, raw_db = _mixed_databases(seed)
        encoded_engine, raw_engine = QueryEngine(encoded_db), QueryEngine(raw_db)
        query = cycle_query(3)
        for engine in (encoded_engine, raw_engine):  # warm every cache
            engine.count(query)
        rng = random.Random(seed * 31)
        nodes = [f"v{index:02d}" for index in range(14)] + [f"w{index}" for index in range(4)]
        for _ in range(6):
            inserts = _random_graph_edges(rng, nodes, 5)
            existing = list(encoded_db.relation("E").tuples)
            deletes = [rng.choice(existing)] if existing else []
            for db in (encoded_db, raw_db):
                db.insert("E", inserts)
                db.delete("E", deletes)
            assert (
                encoded_db.relation("E").tuples == raw_db.relation("E").tuples
            )
            counts = {
                algorithm: (
                    encoded_engine.count(query, algorithm=algorithm).count,
                    raw_engine.count(query, algorithm=algorithm).count,
                )
                for algorithm in ("lftj", "clftj", "generic_join")
            }
            for algorithm, (encoded_count, raw_count) in counts.items():
                assert encoded_count == raw_count, algorithm
            # Oracle: a freshly built database over the mutated contents.
            oracle = Database(
                [Relation("E", ("src", "dst"), encoded_db.relation("E").tuples)],
                name="oracle",
            )
            expected = LeapfrogTrieJoin(query, oracle).count()
            assert counts["lftj"][0] == expected

    def test_pure_python_kernels_agree_without_numpy(self, monkeypatch):
        monkeypatch.setattr(leapfrog_module, "numpy", None)
        encoded_db, raw_db = _mixed_databases(9)
        query = cycle_query(3)
        assert (
            LeapfrogTrieJoin(query, encoded_db).count()
            == LeapfrogTrieJoin(query, raw_db).count()
        )
        decomposition = generic_decompose(query)
        assert (
            CachedLeapfrogTrieJoin(query, encoded_db, decomposition).count()
            == LeapfrogTrieJoin(query, raw_db).count()
        )


# ---------------------------------------------------------------------------
# The zero-decode guarantee and the lazy result boundary
# ---------------------------------------------------------------------------


class TestZeroDecodeGuarantee:
    def test_count_queries_never_decode(self):
        encoded_db, _ = _mixed_databases(3)
        engine = QueryEngine(encoded_db)
        query = cycle_query(3)
        for algorithm in ("lftj", "clftj", "generic_join"):
            result = engine.count(query, algorithm=algorithm)
            assert result.metadata["encoded"] is True
            assert result.metadata["decodes"] == 0
        prepared = engine.prepare(query, algorithm="clftj")
        for _ in range(3):
            assert prepared.count().metadata["decodes"] == 0
        assert encoded_db.dictionary.decodes == 0

    def test_evaluation_decodes_lazily_at_the_result_boundary(self):
        encoded_db, _ = _mixed_databases(4)
        engine = QueryEngine(encoded_db)
        query = parse_query("R(x, y), S(y, z)", name="mixed-join")
        result = engine.evaluate(query, algorithm="lftj")
        # Rows not touched yet: nothing has been decoded.
        assert encoded_db.dictionary.decodes == 0
        assert result.metadata["decodes"] == 0
        rows = result.rows
        assert len(rows) == result.count
        expected_decodes = result.count * 3  # arity = |variables|
        assert encoded_db.dictionary.decodes == expected_decodes
        assert result.metadata["decodes"] == expected_decodes
        # Second access reuses the decoded list.
        assert result.rows is rows
        assert encoded_db.dictionary.decodes == expected_decodes

    def test_direct_executor_evaluate_returns_values(self):
        encoded_db, raw_db = _mixed_databases(6)
        query = cycle_query(3)
        encoded_rows = set(LeapfrogTrieJoin(query, encoded_db).evaluate())
        raw_rows = set(LeapfrogTrieJoin(query, raw_db).evaluate())
        assert encoded_rows == raw_rows
        for row in encoded_rows:
            assert all(isinstance(value, str) for value in row)


class TestEncodedAggregates:
    def test_weighted_aggregates_decode_only_for_weights(self):
        from repro.core.aggregates import (
            CachedAggregateTrieJoin,
            SumProductSemiring,
            relation_weight_function,
        )

        encoded_db, raw_db = _mixed_databases(8)
        query = cycle_query(3)
        decomposition = generic_decompose(query)
        weights = {
            "E": {
                row: 1.0 + (index % 3)
                for index, row in enumerate(encoded_db.relation("E").tuples)
            }
        }

        def run(db):
            return CachedAggregateTrieJoin(
                query, db, decomposition, SumProductSemiring(),
                weight=relation_weight_function(db, weights),
            ).aggregate()

        assert run(encoded_db) == pytest.approx(run(raw_db))

    def test_uniform_counting_aggregate_stays_zero_decode(self):
        from repro.core.aggregates import aggregate_count

        encoded_db, _ = _mixed_databases(8)
        query = cycle_query(3)
        decomposition = generic_decompose(query)
        expected = LeapfrogTrieJoin(query, encoded_db).count()
        assert aggregate_count(query, encoded_db, decomposition) == expected
        assert encoded_db.dictionary.decodes == 0
