"""Tests for relation/attribute statistics."""

import pytest

from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.storage.statistics import (
    StatisticsCatalog,
    attribute_statistics,
    collect_statistics,
    relation_statistics,
)


@pytest.fixture
def skewed() -> Relation:
    rows = [(1, value) for value in range(10)] + [(2, 11), (3, 12)]
    return Relation("E", ("src", "dst"), rows)


class TestAttributeStatistics:
    def test_cardinality_and_distinct(self, skewed):
        stats = attribute_statistics(skewed, "src")
        assert stats.cardinality == 12
        assert stats.distinct == 3

    def test_max_and_mean_frequency(self, skewed):
        stats = attribute_statistics(skewed, "src")
        assert stats.max_frequency == 10
        assert stats.mean_frequency == pytest.approx(4.0)

    def test_skew_ordering(self, skewed):
        skew_src = attribute_statistics(skewed, "src").skew
        skew_dst = attribute_statistics(skewed, "dst").skew
        assert skew_src > skew_dst

    def test_uniform_attribute_has_zero_skew(self):
        rows = [(value, value) for value in range(10)]
        relation = Relation("U", ("a", "b"), rows)
        assert attribute_statistics(relation, "a").skew == pytest.approx(0.0)

    def test_single_value_attribute_has_full_skew(self):
        relation = Relation("S", ("a", "b"), [(1, i) for i in range(5)])
        assert attribute_statistics(relation, "a").skew == pytest.approx(1.0)

    def test_top_values(self, skewed):
        stats = attribute_statistics(skewed, "src", top_k=2)
        assert stats.top_values[0] == (1, 10)
        assert len(stats.top_values) == 2

    def test_selectivity(self, skewed):
        assert attribute_statistics(skewed, "dst").selectivity == 1.0

    def test_empty_relation(self):
        relation = Relation("E", ("a", "b"), [])
        stats = attribute_statistics(relation, "a")
        assert stats.cardinality == 0
        assert stats.distinct == 0
        assert stats.max_frequency == 0


class TestRelationStatistics:
    def test_all_attributes_covered(self, skewed):
        stats = relation_statistics(skewed)
        assert set(stats.attributes) == {"src", "dst"}

    def test_distinct_shortcut(self, skewed):
        assert relation_statistics(skewed).distinct("src") == 3

    def test_unknown_attribute(self, skewed):
        with pytest.raises(KeyError):
            relation_statistics(skewed).attribute("missing")


class TestCatalog:
    def test_collect_statistics(self, skewed):
        database = Database([skewed])
        stats = collect_statistics(database)
        assert stats["E"].cardinality == 12

    def test_catalog_lazy_and_cached(self, skewed):
        database = Database([skewed])
        catalog = StatisticsCatalog(database)
        first = catalog.relation("E")
        second = catalog.relation("E")
        assert first is second

    def test_catalog_attribute_access(self, skewed):
        catalog = StatisticsCatalog(Database([skewed]))
        assert catalog.attribute("E", "src").distinct == 3
