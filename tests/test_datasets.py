"""Tests for the synthetic dataset generators (SNAP / IMDB stand-ins)."""

import pytest

from repro.datasets.generators import (
    degree_sequence,
    erdos_renyi_edges,
    powerlaw_edges,
    preferential_attachment_edges,
    zipf_sampler,
)
from repro.datasets.imdb import ImdbSpec, imdb_cast, imdb_small
from repro.datasets.snap import (
    SNAP_DATASETS,
    dataset_specs,
    ego_facebook,
    ego_twitter,
    load_snap_standin,
    p2p_gnutella04,
    wiki_vote,
)
from repro.storage.statistics import attribute_statistics
import random


class TestGenerators:
    def test_zipf_sampler_is_skewed(self):
        rng = random.Random(1)
        sample = zipf_sampler(50, 1.5, rng)
        draws = [sample() for _ in range(2000)]
        counts = {value: draws.count(value) for value in set(draws)}
        assert counts.get(0, 0) > counts.get(10, 0)

    def test_zipf_alpha_zero_is_roughly_uniform(self):
        rng = random.Random(2)
        sample = zipf_sampler(10, 0.0, rng)
        draws = [sample() for _ in range(5000)]
        counts = [draws.count(value) for value in range(10)]
        assert max(counts) < 2.5 * min(counts)

    def test_zipf_invalid_parameters(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            zipf_sampler(0, 1.0, rng)
        with pytest.raises(ValueError):
            zipf_sampler(10, -1.0, rng)

    def test_erdos_renyi_deterministic(self):
        assert erdos_renyi_edges(20, 0.2, seed=5) == erdos_renyi_edges(20, 0.2, seed=5)

    def test_erdos_renyi_no_self_loops(self):
        assert all(a != b for a, b in erdos_renyi_edges(15, 0.5, seed=1))

    def test_erdos_renyi_probability_extremes(self):
        assert erdos_renyi_edges(10, 0.0, seed=1) == []
        full = erdos_renyi_edges(10, 1.0, seed=1)
        assert len(full) == 45  # undirected complete graph

    def test_powerlaw_edges_deterministic_and_skewed(self):
        edges = powerlaw_edges(60, 250, source_alpha=1.2, seed=3)
        assert edges == powerlaw_edges(60, 250, source_alpha=1.2, seed=3)
        degrees = sorted(degree_sequence(edges), reverse=True)
        assert degrees[0] > 4 * degrees[len(degrees) // 2]

    def test_preferential_attachment_shape(self):
        edges = preferential_attachment_edges(50, edges_per_node=2, seed=1)
        assert all(a != b for a, b in edges)
        assert len(edges) >= 48

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            erdos_renyi_edges(1, 0.5)
        with pytest.raises(ValueError):
            powerlaw_edges(1, 10)
        with pytest.raises(ValueError):
            preferential_attachment_edges(3, edges_per_node=5)


class TestSnapStandins:
    def test_registry_contains_all_five(self):
        assert set(SNAP_DATASETS) == {
            "wiki-Vote", "p2p-Gnutella04", "ca-GrQc", "ego-Facebook", "ego-Twitter"
        }

    @pytest.mark.parametrize("name", sorted(SNAP_DATASETS))
    def test_every_standin_builds_an_edge_relation(self, name):
        database = load_snap_standin(name)
        relation = database.relation("E")
        assert relation.attributes == ("src", "dst")
        assert len(relation) > 50

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_snap_standin("does-not-exist")

    def test_determinism(self):
        assert wiki_vote().relation("E").tuples == wiki_vote().relation("E").tuples

    def test_scale_grows_the_graph(self):
        small = wiki_vote(scale=0.5)
        large = wiki_vote(scale=2.0)
        assert len(large.relation("E")) > len(small.relation("E"))

    def test_skewed_datasets_are_more_skewed_than_gnutella(self):
        skew_twitter = attribute_statistics(ego_twitter().relation("E"), "src").skew
        skew_gnutella = attribute_statistics(p2p_gnutella04().relation("E"), "src").skew
        assert skew_twitter > skew_gnutella

    def test_facebook_denser_than_gnutella(self):
        facebook = ego_facebook()
        gnutella = p2p_gnutella04()
        facebook_nodes = {v for row in facebook.relation("E") for v in row}
        gnutella_nodes = {v for row in gnutella.relation("E") for v in row}
        facebook_density = len(facebook.relation("E")) / max(len(facebook_nodes), 1)
        gnutella_density = len(gnutella.relation("E")) / max(len(gnutella_nodes), 1)
        assert facebook_density > gnutella_density

    def test_specs_available(self):
        specs = dataset_specs()
        assert specs["ego-Twitter"].skewed
        assert not specs["p2p-Gnutella04"].skewed


class TestImdbStandin:
    def test_two_relations_with_expected_schema(self):
        database = imdb_cast()
        for name in ("male_cast", "female_cast"):
            assert database.relation(name).attributes == ("person_id", "movie_id")

    def test_person_ids_disjoint_between_relations(self):
        database = imdb_cast()
        male_people = {row[0] for row in database.relation("male_cast")}
        female_people = {row[0] for row in database.relation("female_cast")}
        assert not (male_people & female_people)

    def test_movie_ids_shared(self):
        database = imdb_cast()
        male_movies = {row[1] for row in database.relation("male_cast")}
        female_movies = {row[1] for row in database.relation("female_cast")}
        assert male_movies & female_movies

    def test_person_more_skewed_than_movie(self):
        """The property Figures 13-14 rely on."""
        database = imdb_cast()
        relation = database.relation("male_cast")
        person_skew = attribute_statistics(relation, "person_id").skew
        movie_skew = attribute_statistics(relation, "movie_id").skew
        assert person_skew > movie_skew

    def test_determinism(self):
        assert imdb_cast().relation("male_cast").tuples == imdb_cast().relation("male_cast").tuples

    def test_spec_controls_size(self):
        small = imdb_cast(ImdbSpec(rows_per_relation=50))
        assert len(small.relation("male_cast")) <= 50

    def test_imdb_small_helper(self):
        database = imdb_small()
        assert len(database.relation("male_cast")) <= 120
