"""Property-based tests (hypothesis) for the trie index and iterator."""

from bisect import bisect_left

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.relation import Relation
from repro.storage.trie import TrieIndex

pairs = st.tuples(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=30))
pair_sets = st.sets(pairs, min_size=1, max_size=60)


def _enumerate(trie: TrieIndex):
    iterator = trie.iterator()
    rows = []
    iterator.open()
    while not iterator.at_end():
        first = iterator.key()
        iterator.open()
        while not iterator.at_end():
            rows.append((first, iterator.key()))
            iterator.next()
        iterator.up()
        iterator.next()
    return rows


@given(pair_sets)
@settings(max_examples=60, deadline=None)
def test_trie_enumeration_round_trips(rows):
    relation = Relation("E", ("a", "b"), rows)
    trie = TrieIndex.build(relation, (0, 1))
    assert _enumerate(trie) == sorted(rows)


@given(pair_sets)
@settings(max_examples=60, deadline=None)
def test_trie_keys_strictly_increasing_at_every_level(rows):
    relation = Relation("E", ("a", "b"), rows)
    trie = TrieIndex.build(relation, (0, 1))
    iterator = trie.iterator()
    iterator.open()
    previous_first = None
    while not iterator.at_end():
        first = iterator.key()
        if previous_first is not None:
            assert first > previous_first
        previous_first = first
        iterator.open()
        previous_second = None
        while not iterator.at_end():
            second = iterator.key()
            if previous_second is not None:
                assert second > previous_second
            previous_second = second
            iterator.next()
        iterator.up()
        iterator.next()


@given(pair_sets, st.integers(min_value=-5, max_value=40))
@settings(max_examples=60, deadline=None)
def test_seek_matches_bisect_semantics(rows, probe):
    """seek(v) must land on the least first-level key >= v (or at_end)."""
    relation = Relation("E", ("a", "b"), rows)
    trie = TrieIndex.build(relation, (0, 1))
    first_level = sorted({a for a, _ in rows})
    iterator = trie.iterator()
    iterator.open()
    iterator.seek(probe)
    position = bisect_left(first_level, probe)
    if position == len(first_level):
        assert iterator.at_end()
    else:
        assert iterator.key() == first_level[position]


@given(pair_sets)
@settings(max_examples=40, deadline=None)
def test_column_permutation_preserves_tuples(rows):
    relation = Relation("E", ("a", "b"), rows)
    swapped = TrieIndex.build(relation, (1, 0))
    assert sorted((b, a) for a, b in rows) == _enumerate(swapped)
