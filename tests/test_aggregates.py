"""Tests for semiring aggregates over the cached trie join."""

import random

import pytest

from repro.core.aggregates import (
    BooleanSemiring,
    CachedAggregateTrieJoin,
    CountingSemiring,
    MaxSemiring,
    MinSemiring,
    SumProductSemiring,
    aggregate_count,
    aggregate_exists,
    relation_weight_function,
)
from repro.core.cache import AdhesionCache, NeverCachePolicy
from repro.core.clftj import CachedLeapfrogTrieJoin
from repro.core.lftj import LeapfrogTrieJoin
from repro.decomposition.generic import generic_decompose
from repro.query.parser import parse_query
from repro.query.patterns import cycle_query, path_query
from repro.storage.database import Database
from repro.storage.relation import Relation

from tests.conftest import brute_force_count


def _edge_weights(database: Database, relation: str = "E", seed: int = 5):
    rng = random.Random(seed)
    return {
        relation: {row: round(rng.uniform(0.5, 2.0), 3) for row in database.relation(relation).tuples}
    }


def _brute_force_aggregate(query, database, weights, combine, reduce_fn, empty):
    """Reference aggregate: enumerate results with LFTJ and fold their weights."""
    joiner = LeapfrogTrieJoin(query, database)
    order = joiner.variable_order
    values = []
    for row in joiner.evaluate():
        assignment = dict(zip(order, row))
        parts = []
        for atom in query.atoms:
            matched = tuple(
                assignment[term] if term in assignment else term.value
                for term in atom.terms
            )
            parts.append(weights[atom.relation].get(matched, 1.0))
        values.append(combine(parts))
    if not values:
        return empty
    return reduce_fn(values)


class TestCountingSemiring:
    @pytest.mark.parametrize("query_factory", [
        lambda: path_query(3),
        lambda: cycle_query(4),
        lambda: cycle_query(5),
    ])
    def test_equals_clftj_count(self, small_graph_db, query_factory):
        query = query_factory()
        decomposition = generic_decompose(query)
        expected = CachedLeapfrogTrieJoin(query, small_graph_db, decomposition).count()
        assert aggregate_count(query, small_graph_db, decomposition) == expected
        assert expected == brute_force_count(query, small_graph_db)

    def test_skewed_data(self, skewed_graph_db):
        query = path_query(4)
        decomposition = generic_decompose(query)
        assert aggregate_count(query, skewed_graph_db, decomposition) == brute_force_count(
            query, skewed_graph_db
        )

    def test_policies_do_not_change_the_count(self, skewed_graph_db):
        query = path_query(4)
        decomposition = generic_decompose(query)
        expected = brute_force_count(query, skewed_graph_db)
        never = CachedAggregateTrieJoin(
            query, skewed_graph_db, decomposition, CountingSemiring(),
            policy=NeverCachePolicy(),
        )
        bounded = CachedAggregateTrieJoin(
            query, skewed_graph_db, decomposition, CountingSemiring(),
            cache=AdhesionCache(capacity=3, eviction="lru"),
        )
        assert never.aggregate() == expected
        assert bounded.aggregate() == expected

    def test_caching_is_used(self, skewed_graph_db):
        query = path_query(4)
        decomposition = generic_decompose(query)
        joiner = CachedAggregateTrieJoin(
            query, skewed_graph_db, decomposition, CountingSemiring()
        )
        joiner.aggregate()
        assert joiner.counter.cache_hits > 0


class TestWeightedSemirings:
    def test_sum_product_matches_brute_force(self, small_graph_db):
        query = path_query(3)
        decomposition = generic_decompose(query)
        weights = _edge_weights(small_graph_db)
        weigh = relation_weight_function(small_graph_db, weights)
        joiner = CachedAggregateTrieJoin(
            query, small_graph_db, decomposition, SumProductSemiring(), weight=weigh
        )
        expected = _brute_force_aggregate(
            query, small_graph_db, weights,
            combine=lambda parts: __import__("math").prod(parts),
            reduce_fn=sum, empty=0.0,
        )
        assert joiner.aggregate() == pytest.approx(expected, rel=1e-9)

    def test_sum_product_on_cycles(self, small_graph_db):
        query = cycle_query(4)
        decomposition = generic_decompose(query)
        weights = _edge_weights(small_graph_db, seed=11)
        weigh = relation_weight_function(small_graph_db, weights)
        joiner = CachedAggregateTrieJoin(
            query, small_graph_db, decomposition, SumProductSemiring(), weight=weigh
        )
        expected = _brute_force_aggregate(
            query, small_graph_db, weights,
            combine=lambda parts: __import__("math").prod(parts),
            reduce_fn=sum, empty=0.0,
        )
        assert joiner.aggregate() == pytest.approx(expected, rel=1e-9)

    def test_min_plus_matches_brute_force(self, small_graph_db):
        query = path_query(3)
        decomposition = generic_decompose(query)
        weights = _edge_weights(small_graph_db, seed=3)
        weigh = relation_weight_function(small_graph_db, weights)
        joiner = CachedAggregateTrieJoin(
            query, small_graph_db, decomposition, MinSemiring(), weight=weigh
        )
        expected = _brute_force_aggregate(
            query, small_graph_db, weights,
            combine=sum, reduce_fn=min, empty=float("inf"),
        )
        assert joiner.aggregate() == pytest.approx(expected, rel=1e-9)

    def test_max_plus_matches_brute_force(self, small_graph_db):
        query = cycle_query(4)
        decomposition = generic_decompose(query)
        weights = _edge_weights(small_graph_db, seed=9)
        weigh = relation_weight_function(small_graph_db, weights)
        joiner = CachedAggregateTrieJoin(
            query, small_graph_db, decomposition, MaxSemiring(), weight=weigh
        )
        expected = _brute_force_aggregate(
            query, small_graph_db, weights,
            combine=sum, reduce_fn=max, empty=float("-inf"),
        )
        assert joiner.aggregate() == pytest.approx(expected, rel=1e-9)

    def test_weighted_aggregate_is_cache_invariant(self, skewed_graph_db):
        """Bounded and unbounded caches must give the same weighted answer."""
        query = path_query(4)
        decomposition = generic_decompose(query)
        weights = _edge_weights(skewed_graph_db, seed=2)
        weigh = relation_weight_function(skewed_graph_db, weights)

        def run(cache):
            joiner = CachedAggregateTrieJoin(
                query, skewed_graph_db, decomposition, SumProductSemiring(),
                weight=weigh, cache=cache,
            )
            return joiner.aggregate()

        unbounded = run(AdhesionCache())
        tiny = run(AdhesionCache(capacity=2, eviction="lru"))
        disabled = run(AdhesionCache(capacity=0))
        assert unbounded == pytest.approx(tiny, rel=1e-9)
        assert unbounded == pytest.approx(disabled, rel=1e-9)


class TestBooleanSemiring:
    def test_non_empty_query(self, small_graph_db):
        query = path_query(3)
        decomposition = generic_decompose(query)
        assert aggregate_exists(query, small_graph_db, decomposition)

    def test_empty_query(self):
        database = Database([Relation("E", ("src", "dst"), [(1, 2)])])
        query = cycle_query(3)
        decomposition = generic_decompose(query)
        assert not aggregate_exists(query, database, decomposition)


class TestSemiringLaws:
    @pytest.mark.parametrize("semiring", [
        CountingSemiring(), SumProductSemiring(), MinSemiring(), MaxSemiring(), BooleanSemiring(),
    ])
    def test_identities(self, semiring):
        sample = semiring.one
        assert semiring.add(semiring.zero, sample) == sample
        assert semiring.multiply(semiring.one, sample) == sample

    @pytest.mark.parametrize("semiring", [CountingSemiring(), SumProductSemiring()])
    def test_distributivity_on_samples(self, semiring):
        a, b, c = 2, 3, 4
        left = semiring.multiply(a, semiring.add(b, c))
        right = semiring.add(semiring.multiply(a, b), semiring.multiply(a, c))
        assert left == right

    def test_validation_mirrors_clftj(self, small_graph_db):
        query = path_query(3)
        wrong = generic_decompose(path_query(4))
        with pytest.raises(ValueError):
            CachedAggregateTrieJoin(query, small_graph_db, wrong, CountingSemiring())
