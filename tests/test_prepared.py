"""Tests for prepared queries, the plan cache and cost-based auto selection."""

import pytest

from repro.engine.engine import ALGORITHMS, QueryEngine
from repro.engine.selector import AUTO_CANDIDATES, CostBasedSelector
from repro.query.parser import parse_query
from repro.query.patterns import cycle_query, path_query
from repro.storage.relation import Relation
from repro.storage.views import query_signature

from tests.conftest import brute_force_count, random_edge_database, skewed_edge_database


@pytest.fixture
def database():
    return random_edge_database(seed=5, num_edges=50)


@pytest.fixture
def engine(database):
    return QueryEngine(database)


class TestQuerySignature:
    def test_renamed_queries_share_a_signature(self):
        left = parse_query("E(x,y), E(y,z), E(z,x)")
        right = parse_query("E(a,b), E(b,c), E(c,a)")
        assert query_signature(left) == query_signature(right)

    def test_cross_atom_structure_is_captured(self):
        chain = parse_query("E(x,y), E(y,z)")
        fork = parse_query("E(x,y), E(x,z)")
        assert query_signature(chain) != query_signature(fork)

    def test_constants_and_relations_distinguish(self):
        assert query_signature(parse_query("E(x,1)")) != query_signature(parse_query("E(x,2)"))
        assert query_signature(parse_query("E(x,y)")) != query_signature(parse_query("R(x,y)"))


class TestPlanCache:
    def test_second_execution_hits_plan_cache_with_zero_rebuilds(self, engine):
        query = cycle_query(4)
        first = engine.count(query, algorithm="clftj")
        second = engine.count(query, algorithm="clftj")
        assert first.count == second.count
        assert first.metadata["plan_builds"] == 1
        assert second.metadata["plan_builds"] == 0
        assert second.metadata["plan_cache_hits"] >= 1
        assert second.metadata["index_builds"] == 0

    def test_renamed_query_reuses_the_plan(self, engine, database):
        first = engine.count(parse_query("E(x,y), E(y,z), E(z,x)"), algorithm="clftj")
        renamed = parse_query("E(a,b), E(b,c), E(c,a)")
        second = engine.count(renamed, algorithm="clftj")
        assert second.metadata["plan_builds"] == 0
        assert second.metadata["plan_cache_hits"] >= 1
        assert first.count == second.count == brute_force_count(renamed, database)

    def test_renamed_plan_is_correctly_translated(self, engine):
        plan = engine.plan(parse_query("E(x,y), E(y,z), E(z,x), E(x, w)"))
        renamed = parse_query("E(p,q), E(q,r), E(r,p), E(p, s)")
        translated = engine.plan(renamed)
        assert tuple(v.name for v in plan.variable_order) != tuple(
            v.name for v in translated.variable_order
        )
        assert translated.decomposition.is_valid(renamed)
        assert {v.name for v in translated.decomposition.all_variables()} == {
            v.name for v in renamed.variables
        }

    def test_ytd_and_clftj_share_one_cached_plan(self, engine, database):
        query = cycle_query(4)
        engine.count(query, algorithm="clftj")
        result = engine.count(query, algorithm="ytd")
        assert result.metadata["plan_builds"] == 0
        assert result.metadata["plan_cache_hits"] >= 1

    def test_explicit_decomposition_bypasses_the_cache(self, engine, database):
        from repro.decomposition.generic import generic_decompose

        query = cycle_query(5)
        decomposition = generic_decompose(query)
        result = engine.count(query, algorithm="clftj", decomposition=decomposition)
        assert result.metadata["plan_builds"] == 0
        assert result.metadata["plan_cache_hits"] == 0
        assert result.count == brute_force_count(query, database)

    def test_replacing_a_relation_invalidates_plans(self, engine, database):
        query = cycle_query(4)
        engine.count(query, algorithm="clftj")
        assert database.plan_cache_size() == 1
        database.add_relation(
            Relation("E", ("src", "dst"), [(1, 2), (2, 1)]), replace=True
        )
        assert database.plan_cache_size() == 0
        result = engine.count(query, algorithm="clftj")
        assert result.metadata["plan_builds"] == 1

    def test_clear_plan_cache(self, engine, database):
        engine.count(cycle_query(4), algorithm="clftj")
        assert database.clear_plan_cache() == 1
        assert database.plan_cache_size() == 0


class TestPreparedQuery:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_prepared_count_agrees_with_fresh_runs(self, engine, database, algorithm):
        query = cycle_query(3)
        prepared = engine.prepare(query, algorithm=algorithm)
        first = prepared.count()
        second = prepared.count()
        fresh = engine.count(query, algorithm=algorithm)
        expected = brute_force_count(query, database)
        assert first.count == second.count == fresh.count == expected

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_prepared_evaluate_agrees_with_fresh_runs(self, engine, algorithm):
        query = path_query(3)
        prepared = engine.prepare(query, algorithm=algorithm)
        first = prepared.evaluate()
        second = prepared.evaluate()
        fresh = engine.evaluate(query, algorithm=algorithm)
        assert set(first.rows) == set(second.rows) == set(fresh.rows)

    def test_reexecution_reports_plan_hit_and_zero_rebuilds(self, engine):
        prepared = engine.prepare(cycle_query(4), algorithm="clftj")
        prepared.count()
        result = prepared.count()
        assert result.metadata["plan_cache_hits"] >= 1
        assert result.metadata["plan_builds"] == 0
        assert result.metadata["index_builds"] == 0
        assert result.metadata["prepared_executions"] == 2

    def test_prepared_clftj_keeps_a_warm_adhesion_cache(self, engine):
        prepared = engine.prepare(cycle_query(4), algorithm="clftj")
        cold = prepared.count()
        warm = prepared.count()
        assert warm.counter.cache_hits > 0
        assert warm.counter.trie_accesses < cold.counter.trie_accesses

    def test_prepared_modes_use_separate_adhesion_caches(self, engine):
        prepared = engine.prepare(cycle_query(4), algorithm="clftj")
        count_result = prepared.count()
        evaluate_result = prepared.evaluate()  # must not trip the mode guard
        assert count_result.count == evaluate_result.count

    def test_prepared_auto_resolves_once(self, engine):
        prepared = engine.prepare(cycle_query(4), algorithm="auto")
        assert prepared.requested_algorithm == "auto"
        assert prepared.algorithm in AUTO_CANDIDATES
        result = prepared.count()
        assert result.metadata["selected_algorithm"] == prepared.algorithm
        assert result.count == engine.count(cycle_query(4), algorithm="lftj").count

    def test_prepared_drops_warm_caches_when_data_changes(self, engine, database):
        query = path_query(4)
        prepared = engine.prepare(query, algorithm="clftj")
        prepared.count()
        database.add_relation(
            Relation("E", ("src", "dst"), [(1, 2), (2, 3), (3, 4)]), replace=True
        )
        stale_free = prepared.count()
        fresh = QueryEngine(database).count(query, algorithm="clftj")
        assert stale_free.count == fresh.count == brute_force_count(query, database)

    def test_prepared_explain_mentions_the_plan_cache(self, engine):
        prepared = engine.prepare(cycle_query(4), algorithm="clftj")
        text = prepared.explain()
        assert "plan cache" in text
        assert "index cache" in text


class TestAutoSelection:
    def test_auto_rejects_explicit_planning_parameters(self, engine):
        with pytest.raises(ValueError, match="auto"):
            engine.count(cycle_query(4), algorithm="auto", cache_capacity=5)

    def test_auto_agrees_with_explicit_runs(self, engine, database):
        for query in (path_query(3), cycle_query(3), cycle_query(4)):
            auto = engine.count(query, algorithm="auto")
            explicit = engine.count(query, algorithm=auto.metadata["selected_algorithm"])
            assert auto.count == explicit.count == brute_force_count(query, database)

    def test_auto_covers_all_bench_workloads(self):
        from repro.bench.workloads import cycle_queries, path_queries

        database = skewed_edge_database(seed=2)
        engine = QueryEngine(database)
        for query in path_queries((3, 4, 5)) + cycle_queries((3, 4, 5)):
            result = engine.count(query, algorithm="auto")
            assert result.metadata["selected_algorithm"] in AUTO_CANDIDATES
            assert result.count == brute_force_count(query, database)

    def test_selector_prefers_lftj_on_single_bag_plans(self, engine):
        query = cycle_query(3)  # the triangle admits only the trivial bag
        selection = engine.selector.choose(query, engine.plan(query))
        assert selection.algorithm == "lftj"
        assert selection.costs["lftj"] < selection.costs["clftj"]

    def test_selector_prefers_caching_on_decomposable_queries(self, engine):
        # On a 6-cycle the partial-assignment estimate dwarfs the distinct
        # adhesion keys, so the caching discount dominates the probe overhead.
        query = cycle_query(6)
        selection = engine.selector.choose(query, engine.plan(query))
        assert selection.algorithm == "clftj"
        assert selection.costs["clftj"] < selection.costs["lftj"]

    def test_selection_describe_reports_costs_and_reasons(self, engine):
        query = cycle_query(4)
        selection = engine.selector.choose(query, engine.plan(query))
        text = selection.describe()
        assert "selected algorithm" in text
        for name in AUTO_CANDIDATES:
            assert name in text

    def test_selector_costs_are_finite_and_positive(self, engine):
        selection = engine.selector.choose(cycle_query(4), engine.plan(cycle_query(4)))
        for cost in selection.costs.values():
            assert cost > 0
            assert cost != float("inf")


class TestExplain:
    def test_explain_auto_shows_reasoning_and_cache_state(self, engine):
        text = engine.explain(cycle_query(4))
        assert "selected algorithm" in text
        assert "plan cache" in text
        assert "index cache" in text

    def test_explain_explicit_algorithm(self, engine):
        text = engine.explain(cycle_query(4), algorithm="clftj")
        assert "algorithm: clftj (explicit)" in text
        assert "variable order" in text

    def test_explain_reports_cached_plan_on_second_call(self, engine):
        engine.explain(cycle_query(4), algorithm="clftj")
        text = engine.explain(cycle_query(4), algorithm="clftj")
        assert "this query: cached" in text

    def test_explain_rejects_unused_parameters(self, engine):
        with pytest.raises(ValueError, match="does not use"):
            engine.explain(cycle_query(4), algorithm="lftj", cache_capacity=5)

    def test_explain_reports_newly_planned_on_a_cold_cache(self, engine):
        # The auto path consults the plan cache twice inside one explain
        # call; that internal hit must not masquerade as a warm cache.
        text = engine.explain(cycle_query(4))
        assert "this query: newly planned" in text
        assert "this query: cached" in engine.explain(cycle_query(4))

    def test_explain_reports_bypass_for_explicit_decompositions(self, engine):
        from repro.decomposition.generic import generic_decompose

        query = cycle_query(4)
        text = engine.explain(
            query, algorithm="clftj", decomposition=generic_decompose(query)
        )
        assert "bypassed (explicit decomposition)" in text

    def test_explain_planless_algorithm(self, engine):
        text = engine.explain(cycle_query(4), algorithm="lftj")
        assert "not planned" in text
