"""The query service layer: sessions, admission, HTTP front-end, shutdown.

Four suites plus the PR 10 acceptance test:

* **Sessions** — token minting, TTL/LRU eviction, shared warm handles;
* **Admission** — the concurrency bound, bounded queue, typed shedding,
  drain, shutdown;
* **Service** — transport-free request handling: correctness against the
  brute-force oracle, payload validation, timeout clamping, warm prepared
  handles, memory-pressure shedding, graceful shutdown;
* **HTTP** — the stdlib front-end: routes, error mapping (400/404/408/
  429/503 + Retry-After), session header, /metrics and /healthz;
* **Acceptance** — 8 concurrent clients x 50 requests over one warm
  database return results identical to the serial oracle, report zero
  misattributed cache-delta metadata, and /metrics totals reconcile
  exactly with the summed per-request metadata.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine.faults import QueryTimeoutError
from repro.server.admission import (
    AdmissionController,
    QueueFullError,
    ServiceUnavailableError,
)
from repro.server.http import serve
from repro.server.metrics import render_metrics
from repro.server.service import QueryService, RequestError
from repro.server.sessions import SessionManager, SessionNotFoundError
from repro.storage.database import SCOPED_COUNTERS
from repro.query.patterns import cycle_query, path_query

from tests.conftest import brute_force_count, brute_force_evaluate, random_edge_database

BUILD_COUNTERS = ("index_builds", "plan_builds", "compiled_builds")


# ---------------------------------------------------------------------------
# HTTP plumbing helpers (stdlib-only, mirror what real clients do).
# ---------------------------------------------------------------------------


def _post(base: str, path: str, payload: dict, headers: dict = None):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        body = error.read()
        return error.code, json.loads(body) if body else {}, dict(error.headers)


def _get(base: str, path: str):
    try:
        with urllib.request.urlopen(base + path, timeout=30) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


@pytest.fixture
def service():
    svc = QueryService(
        random_edge_database(),
        max_concurrency=8,
        max_queue=64,
        queue_timeout=30.0,
    )
    yield svc
    if not svc.draining:
        svc.shutdown(drain_timeout=5.0)


@pytest.fixture
def http_server(service):
    server = serve(service, host="127.0.0.1", port=0)
    host, port = server.server_address[:2]
    yield service, f"http://{host}:{port}", server
    server.shutdown()
    server.server_close()


# ---------------------------------------------------------------------------
# Sessions.
# ---------------------------------------------------------------------------


class TestSessions:
    def test_tokens_are_unique_and_resolvable(self):
        manager = SessionManager(ttl_seconds=60)
        first, second = manager.create(), manager.create()
        assert first.token != second.token
        assert manager.get(first.token) is first
        assert manager.stats()["active"] == 2

    def test_unknown_token_raises_typed_error(self):
        manager = SessionManager(ttl_seconds=60)
        with pytest.raises(SessionNotFoundError):
            manager.get("deadbeef" * 4)

    def test_ttl_eviction(self, monkeypatch):
        manager = SessionManager(ttl_seconds=10)
        session = manager.create()
        base = time.monotonic()
        monkeypatch.setattr(time, "monotonic", lambda: base + 11.0)
        with pytest.raises(SessionNotFoundError):
            manager.get(session.token)
        assert manager.stats()["active"] == 0
        assert manager.evicted_total == 1

    def test_lru_bound_evicts_oldest(self):
        manager = SessionManager(ttl_seconds=60, max_sessions=2)
        first = manager.create()
        second = manager.create()
        manager.get(first.token)  # touch: first is now more recent
        third = manager.create()  # evicts second (least recently used)
        assert manager.get(first.token) is first
        assert manager.get(third.token) is third
        with pytest.raises(SessionNotFoundError):
            manager.get(second.token)

    def test_prepared_handle_shared_under_races(self):
        manager = SessionManager(ttl_seconds=60)
        session = manager.create()
        built = []

        def factory():
            built.append(object())
            time.sleep(0.01)
            return built[-1]

        handles = []
        threads = [
            threading.Thread(
                target=lambda: handles.append(
                    session.prepared_handle("fp", factory)
                )
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert len(built) == 1
        assert all(handle is built[0] for handle in handles)


# ---------------------------------------------------------------------------
# Admission control.
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_bounds_concurrency(self):
        controller = AdmissionController(max_concurrency=2, max_queue=8, queue_timeout=5)
        peak = []
        lock = threading.Lock()
        active = [0]

        def work():
            with controller.admit():
                with lock:
                    active[0] += 1
                    peak.append(active[0])
                time.sleep(0.02)
                with lock:
                    active[0] -= 1

        threads = [threading.Thread(target=work) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert max(peak) <= 2
        assert controller.admitted_total == 6

    def test_queue_full_sheds_with_retry_after(self):
        controller = AdmissionController(max_concurrency=1, max_queue=0, queue_timeout=1)
        with controller.admit():
            with pytest.raises(QueueFullError) as info:
                with controller.admit():
                    pass  # pragma: no cover - never admitted
        assert info.value.retry_after > 0
        assert controller.rejected_queue_full_total == 1

    def test_wait_timeout_sheds(self):
        controller = AdmissionController(
            max_concurrency=1, max_queue=4, queue_timeout=0.05
        )
        with controller.admit():
            started = time.monotonic()
            with pytest.raises(QueueFullError, match="timed out"):
                with controller.admit():
                    pass  # pragma: no cover
            assert time.monotonic() - started < 2.0
        assert controller.rejected_timeout_total == 1

    def test_shutdown_rejects_and_wakes_waiters(self):
        controller = AdmissionController(max_concurrency=1, max_queue=4, queue_timeout=30)
        release = threading.Event()
        errors = []

        def holder():
            with controller.admit():
                release.wait(timeout=30)

        def waiter():
            try:
                with controller.admit():
                    pass  # pragma: no cover
            except (QueueFullError, ServiceUnavailableError) as error:
                errors.append(error)

        hold = threading.Thread(target=holder)
        hold.start()
        time.sleep(0.02)
        wait = threading.Thread(target=waiter)
        wait.start()
        time.sleep(0.02)
        controller.shutdown()
        wait.join(timeout=10)
        assert not wait.is_alive(), "shutdown must wake queued waiters"
        release.set()
        hold.join(timeout=10)
        assert len(errors) == 1
        assert isinstance(errors[0], ServiceUnavailableError)
        with pytest.raises(ServiceUnavailableError):
            with controller.admit():
                pass  # pragma: no cover

    def test_drain_waits_for_active(self):
        controller = AdmissionController(max_concurrency=2, max_queue=2, queue_timeout=5)
        release = threading.Event()

        def holder():
            with controller.admit():
                release.wait(timeout=30)

        thread = threading.Thread(target=holder)
        thread.start()
        time.sleep(0.02)
        assert controller.drain(timeout=0.05) is False
        release.set()
        assert controller.drain(timeout=10) is True
        thread.join(timeout=10)


# ---------------------------------------------------------------------------
# The transport-free service.
# ---------------------------------------------------------------------------


class TestService:
    def test_count_matches_oracle(self, service):
        expected = brute_force_count(cycle_query(3), service.database)
        response = service.count({"query": "3-cycle"})
        assert response["count"] == expected
        assert response["algorithm"] == "clftj"
        assert "metadata" in response

    def test_evaluate_rows_match_oracle(self, service):
        query = path_query(3)
        expected = brute_force_evaluate(query, service.database)
        response = service.evaluate({"query": "3-path", "algorithm": "lftj"})
        assert response["count"] == len(expected)
        assert {tuple(row) for row in response["rows"]} == expected
        assert response["rows_truncated"] is False

    def test_evaluate_truncates_rows(self, service):
        response = service.evaluate({"query": "3-path", "max_rows": 5})
        assert len(response["rows"]) == 5
        assert response["rows_truncated"] is True
        assert response["count"] > 5  # the count stays exact

    def test_bad_payloads_raise_request_error(self, service):
        for payload in (
            {},
            {"query": ""},
            {"query": 7},
            {"query": "3-cycle", "timeout": "fast"},
            {"query": "3-cycle", "timeout": -1},
            {"query": "3-cycle", "parallel": -2},
            {"query": "3-cycle", "cache_capacity": -1},
            {"query": "3-cycle", "surprise": True},
            {"query": "totally unparseable ~~~"},
        ):
            with pytest.raises(RequestError):
                service.count(payload)

    def test_engine_parameter_rejections_surface(self, service):
        # reject_unused: pairwise does not honour timeout.
        with pytest.raises(ValueError, match="does not use"):
            service.count({"query": "3-cycle", "algorithm": "pairwise", "timeout": 5})

    def test_timeout_is_clamped_to_max(self):
        svc = QueryService(random_edge_database(), max_timeout=0.5)
        _, parameters = svc._parse({"query": "3-cycle", "timeout": 10_000})
        assert parameters["timeout"] == 0.5

    def test_expired_timeout_maps_to_query_timeout(self, service):
        with pytest.raises(QueryTimeoutError):
            service.count({"query": "3-cycle", "timeout": 1e-9})
        # and the request ledger recorded the 408
        assert service.stats()["requests_total"][("count", 408)] == 1

    def test_prepare_then_warm_session_runs(self, service):
        prep = service.prepare({"query": "3-cycle", "algorithm": "clftj"})
        token = prep["session"]
        first = service.count({"query": "3-cycle", "algorithm": "clftj", "session": token})
        second = service.count({"query": "3-cycle", "algorithm": "clftj", "session": token})
        assert first["count"] == second["count"]
        for key in BUILD_COUNTERS:
            assert second["metadata"][key] == 0, (key, second["metadata"])
        assert second["metadata"]["prepared_executions"] == 2
        assert service.sessions.stats()["prepared_handles"] == 1

    def test_unknown_session_token_raises(self, service):
        with pytest.raises(SessionNotFoundError):
            service.count({"query": "3-cycle", "session": "no-such-token"})

    def test_memory_pressure_sheds_503(self):
        database = random_edge_database()
        service = QueryService(database)
        service.count({"query": "3-cycle"})  # build caches -> nonzero footprint
        database.memory_budget_bytes = 1  # everything is now over budget
        with pytest.raises(ServiceUnavailableError, match="memory budget"):
            service.count({"query": "3-cycle"})

    def test_graceful_shutdown_drains_and_closes_pools(self):
        service = QueryService(random_edge_database(), max_concurrency=2)
        service.count({"query": "3-cycle", "parallel": 2})  # spin up a pool
        summary = service.shutdown(drain_timeout=5.0)
        assert summary["drained"] is True
        assert summary["pools_closed"] == 1
        with pytest.raises(ServiceUnavailableError):
            service.count({"query": "3-cycle"})
        ok, body = service.healthz()
        assert ok is False and body["status"] == "draining"

    def test_metrics_render_parses_as_prometheus_text(self, service):
        service.count({"query": "3-cycle"})
        text = render_metrics(service)
        lines = [line for line in text.splitlines() if line]
        samples = 0
        for line in lines:
            if line.startswith("# HELP") or line.startswith("# TYPE"):
                continue
            name, value = line.rsplit(" ", 1)
            float(value)  # every sample value must be numeric
            assert name.startswith("repro_")
            samples += 1
        assert samples > 20
        assert "repro_query_index_builds_total" in text
        assert 'repro_requests_total{endpoint="count",status="200"} 1' in text


# ---------------------------------------------------------------------------
# The HTTP front-end.
# ---------------------------------------------------------------------------


class TestHTTP:
    def test_count_roundtrip(self, http_server):
        service, base, _ = http_server
        expected = brute_force_count(cycle_query(3), service.database)
        status, body, _ = _post(base, "/count", {"query": "3-cycle"})
        assert status == 200
        assert body["count"] == expected

    def test_session_header_binds_warm_handle(self, http_server):
        _, base, _ = http_server
        status, prep, _ = _post(base, "/prepare", {"query": "4-path"})
        assert status == 200
        token = prep["session"]
        headers = {"X-Repro-Session": token}
        status, first, _ = _post(base, "/count", {"query": "4-path"}, headers)
        status, second, _ = _post(base, "/count", {"query": "4-path"}, headers)
        assert first["count"] == second["count"]
        assert second["session"] == token
        for key in BUILD_COUNTERS:
            assert second["metadata"][key] == 0

    def test_error_mapping(self, http_server):
        _, base, _ = http_server
        status, body, _ = _post(base, "/count", {"query": ""})
        assert status == 400 and "query" in body["error"]
        status, body, _ = _post(base, "/count", {"query": "3-cycle", "timeout": 1e-9})
        assert status == 408 and "timeout" in body["error"]
        status, body, _ = _post(
            base, "/count", {"query": "3-cycle"}, {"X-Repro-Session": "bogus"}
        )
        assert status == 404 and "session" in body["error"]
        status, body, _ = _post(base, "/nonsense", {"query": "3-cycle"})
        assert status == 404

    def test_invalid_json_is_400(self, http_server):
        _, base, _ = http_server
        request = urllib.request.Request(
            base + "/count", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400

    def test_healthz_and_metrics(self, http_server):
        _, base, _ = http_server
        status, body = _get(base, "/healthz")
        assert status == 200 and json.loads(body)["status"] == "ok"
        _post(base, "/count", {"query": "3-cycle"})
        status, text = _get(base, "/metrics")
        assert status == 200
        assert "repro_db_index_builds_total" in text
        assert 'repro_requests_total{endpoint="count",status="200"}' in text

    def test_saturation_returns_429_with_retry_after(self):
        service = QueryService(
            random_edge_database(),
            max_concurrency=1,
            max_queue=0,
            queue_timeout=0.2,
        )
        server = serve(service, port=0)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            # Hold the only execution slot directly, then request over HTTP.
            with service.admission.admit():
                status, body, headers = _post(base, "/count", {"query": "3-cycle"})
                assert status == 429
                assert "Retry-After" in headers
                assert int(headers["Retry-After"]) >= 1
                assert "saturated" in body["error"] or "timed out" in body["error"]
            # Slot free again: the same request succeeds.
            status, body, _ = _post(base, "/count", {"query": "3-cycle"})
            assert status == 200
        finally:
            server.shutdown()
            server.server_close()
            service.shutdown(drain_timeout=2.0)

    def test_graceful_shutdown_then_503(self, http_server):
        service, base, server = http_server
        _post(base, "/count", {"query": "3-cycle"})
        summary = server.shutdown_gracefully(drain_timeout=5.0)
        assert summary["drained"] is True
        # The serve loop has stopped; the service itself now refuses work.
        with pytest.raises(ServiceUnavailableError):
            service.count({"query": "3-cycle"})


# ---------------------------------------------------------------------------
# The CLI entry point, end to end in a subprocess.
# ---------------------------------------------------------------------------


class TestServeCLI:
    def test_serve_boot_query_sigterm(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys

        edges = tmp_path / "tiny.txt"
        edges.write_text(
            "# tiny directed cycle + chords\n"
            + "\n".join(f"{u} {v}" for u, v in
                        [(i, (i + 1) % 8) for i in range(8)]
                        + [(i, (i + 3) % 8) for i in range(8)]
                        + [(2, 0), (5, 3)])  # close two directed triangles
            + "\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--dataset", str(edges), "--port", "0",
             "--max-concurrency", "2", "--drain-timeout", "5"],
            cwd="/root/repo",
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "serving" in banner and "http://" in banner, banner
            base = "http://" + banner.split("http://", 1)[1].split(" ", 1)[0]
            status, body, _ = _post(base, "/count", {"query": "3-cycle"})
            assert status == 200 and body["count"] > 0
            status, text = _get(base, "/metrics")
            assert status == 200 and "repro_queries_total 1" in text
            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=30)
            assert code == 0
            tail = process.stdout.read()
            assert "shutdown: drained=True" in tail, tail
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup on failure
                process.kill()
                process.wait(timeout=10)


# ---------------------------------------------------------------------------
# PR 10 acceptance: concurrent clients over one warm database.
# ---------------------------------------------------------------------------


class TestAcceptance:
    NUM_CLIENTS = 8
    REQUESTS_PER_CLIENT = 50

    def test_eight_concurrent_clients_reconcile(self, http_server):
        service, base, _ = http_server
        database = service.database

        workload = [
            {"query": "3-cycle", "algorithm": "clftj"},
            {"query": "3-cycle", "algorithm": "lftj"},
            {"query": "3-path", "algorithm": "generic_join"},
            {"query": "4-path", "algorithm": "clftj"},
            {"query": "4-cycle", "algorithm": "lftj"},
            {"query": "3-path", "algorithm": "lftj"},
            {"query": "4-path", "algorithm": "lftj"},
            {"query": "3-cycle", "algorithm": "pclftj", "parallel": 2},
        ]
        metadata_sums = {name: 0 for name in SCOPED_COUNTERS}
        sums_lock = threading.Lock()

        def absorb(metadata):
            with sums_lock:
                for name in SCOPED_COUNTERS:
                    value = metadata.get(name)
                    if isinstance(value, int):
                        metadata_sums[name] += value

        # Serial warmup: one pass per workload item records the oracle
        # answer and pays every build exactly once.
        serial = []
        for item in workload:
            status, body, _ = _post(base, "/evaluate", dict(item))
            assert status == 200
            absorb(body["metadata"])
            serial.append((body["count"], body["rows"]))

        barrier = threading.Barrier(self.NUM_CLIENTS)
        failures = []

        def client(index):
            item = workload[index % len(workload)]
            expected_count, expected_rows = serial[index % len(workload)]
            token = None
            if index % 2 == 0:  # half the clients pin a session
                status, prep, _ = _post(base, "/prepare", dict(item))
                assert status == 200
                token = prep["session"]
            headers = {"X-Repro-Session": token} if token else {}
            barrier.wait(timeout=60)
            for _ in range(self.REQUESTS_PER_CLIENT):
                status, body, _ = _post(base, "/evaluate", dict(item), headers)
                if status != 200:
                    failures.append((index, status, body))
                    return
                absorb(body["metadata"])
                # Identical to the serial oracle, byte for byte.
                if body["count"] != expected_count or body["rows"] != expected_rows:
                    failures.append((index, "mismatch", body["count"]))
                    return
                # Zero misattributed builds: the database is warm, so any
                # nonzero build delta here was stolen from another client.
                for key in BUILD_COUNTERS:
                    if body["metadata"][key] != 0:
                        failures.append((index, "misattributed", key, body["metadata"]))
                        return

        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(self.NUM_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
            assert not thread.is_alive(), "an acceptance client hung"
        assert failures == []

        # /metrics reconciles exactly with the summed per-request metadata.
        status, text = _get(base, "/metrics")
        assert status == 200
        exposed = {}
        for line in text.splitlines():
            if line.startswith("repro_query_") and not line.startswith("#"):
                name, value = line.rsplit(" ", 1)
                counter = name[len("repro_query_"):-len("_total")]
                if counter in SCOPED_COUNTERS:
                    exposed[counter] = int(value)
        for name in SCOPED_COUNTERS:
            assert exposed[name] == metadata_sums[name], (
                name,
                exposed[name],
                metadata_sums[name],
            )
        # And nothing global is unaccounted for: every build the database
        # performed belongs to exactly one served request.
        for name in BUILD_COUNTERS:
            assert getattr(database, name) == metadata_sums[name], name
