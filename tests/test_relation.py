"""Tests for the Relation value type."""

import pytest

from repro.storage.relation import Relation


@pytest.fixture
def edges() -> Relation:
    return Relation("E", ("src", "dst"), [(1, 2), (2, 3), (1, 3), (2, 3)])


class TestConstruction:
    def test_duplicates_removed(self, edges):
        assert len(edges) == 3

    def test_tuples_sorted(self, edges):
        assert list(edges.tuples) == sorted(edges.tuples)

    def test_arity(self, edges):
        assert edges.arity == 2

    def test_wrong_arity_tuple_rejected(self):
        with pytest.raises(ValueError):
            Relation("E", ("a", "b"), [(1, 2, 3)])

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError):
            Relation("E", ("a", "a"), [])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Relation("", ("a",), [])

    def test_no_attributes_rejected(self):
        with pytest.raises(ValueError):
            Relation("E", (), [])

    def test_empty_relation_allowed(self):
        assert len(Relation("E", ("a", "b"), [])) == 0


class TestAccess:
    def test_contains(self, edges):
        assert (1, 2) in edges
        assert (9, 9) not in edges

    def test_iteration(self, edges):
        assert set(edges) == {(1, 2), (1, 3), (2, 3)}

    def test_attribute_index(self, edges):
        assert edges.attribute_index("dst") == 1

    def test_unknown_attribute(self, edges):
        with pytest.raises(KeyError):
            edges.attribute_index("nope")

    def test_column(self, edges):
        assert sorted(edges.column("src")) == [1, 1, 2]

    def test_value_counts(self, edges):
        assert edges.value_counts("src") == {1: 2, 2: 1}


class TestOperations:
    def test_project(self, edges):
        projected = edges.project(["src"])
        assert projected.attributes == ("src",)
        assert set(projected) == {(1,), (2,)}

    def test_project_reorders(self, edges):
        swapped = edges.project(["dst", "src"])
        assert (2, 1) in swapped

    def test_select_equal(self, edges):
        selected = edges.select_equal("src", 1)
        assert set(selected) == {(1, 2), (1, 3)}

    def test_rename(self, edges):
        assert edges.rename("F").name == "F"
        assert edges.rename("F").tuples == edges.tuples

    def test_with_attributes(self, edges):
        renamed = edges.with_attributes(("x", "y"))
        assert renamed.attributes == ("x", "y")

    def test_equality(self):
        left = Relation("E", ("a", "b"), [(1, 2)])
        right = Relation("E", ("a", "b"), [(1, 2)])
        assert left == right
        assert hash(left) == hash(right)

    def test_repr_contains_cardinality(self, edges):
        assert "cardinality=3" in repr(edges)
