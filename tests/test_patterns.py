"""Tests for the query-pattern generators (paths, cycles, cliques, lollipops, ...)."""

import pytest

from repro.query.gaifman import gaifman_graph
from repro.query.patterns import (
    bipartite_cycle_query,
    clique_query,
    cycle_query,
    graph_pattern_query,
    lollipop_query,
    path_query,
    random_pattern_query,
    star_query,
)
from repro.query.terms import Variable


class TestPathQuery:
    def test_atom_count_matches_length(self):
        assert len(path_query(4)) == 4

    def test_variable_count_is_length_plus_one(self):
        assert len(path_query(4).variables) == 5

    def test_chained_structure(self):
        query = path_query(3)
        assert query.atoms[0].terms[1] == query.atoms[1].terms[0]

    def test_name(self):
        assert path_query(5).name == "5-path"

    def test_length_zero_rejected(self):
        with pytest.raises(ValueError):
            path_query(0)


class TestCycleQuery:
    def test_atom_count(self):
        assert len(cycle_query(5)) == 5

    def test_variables_equal_length(self):
        assert len(cycle_query(5).variables) == 5

    def test_closes_the_cycle(self):
        query = cycle_query(4)
        assert query.atoms[-1].terms[1] == query.atoms[0].terms[0]

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            cycle_query(2)

    def test_gaifman_graph_is_a_cycle(self):
        graph = gaifman_graph(cycle_query(6))
        assert all(degree == 2 for _, degree in graph.degree())


class TestCliqueAndStar:
    def test_clique_atom_count(self):
        assert len(clique_query(4)) == 6

    def test_clique_gaifman_is_complete(self):
        graph = gaifman_graph(clique_query(5))
        assert graph.number_of_edges() == 10

    def test_star_structure(self):
        query = star_query(4)
        assert len(query) == 4
        hub = Variable("x1")
        assert all(hub in atom.variable_set() for atom in query.atoms)

    def test_small_sizes_rejected(self):
        with pytest.raises(ValueError):
            clique_query(1)
        with pytest.raises(ValueError):
            star_query(0)


class TestLollipop:
    def test_default_is_3_2(self):
        query = lollipop_query()
        # triangle (3 atoms) + tail of 2 edges
        assert len(query) == 5
        assert len(query.variables) == 5

    def test_name(self):
        assert lollipop_query(3, 2).name == "{3,2}-lollipop"

    def test_tail_attaches_to_the_clique(self):
        query = lollipop_query(3, 2)
        tail_atom = query.atoms[3]
        assert Variable("x3") in tail_atom.variable_set()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            lollipop_query(2, 2)
        with pytest.raises(ValueError):
            lollipop_query(3, 0)


class TestGraphPatternQuery:
    def test_explicit_edges(self):
        query = graph_pattern_query([(1, 2), (2, 3)])
        assert len(query) == 2
        assert query.variables == (Variable("x1"), Variable("x2"), Variable("x3"))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            graph_pattern_query([])


class TestRandomPatternQuery:
    def test_deterministic_for_seed(self):
        first = random_pattern_query(5, 0.5, seed=7)
        second = random_pattern_query(5, 0.5, seed=7)
        assert first == second

    def test_connected_by_default(self):
        query = random_pattern_query(6, 0.4, seed=3)
        graph = gaifman_graph(query)
        import networkx as nx

        assert nx.is_connected(graph)

    def test_name_mentions_parameters(self):
        assert "5-rand(0.4)" == random_pattern_query(5, 0.4, seed=1).name

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            random_pattern_query(5, 0.0, seed=1)


class TestBipartiteCycle:
    def test_four_cycle_shape(self):
        query = bipartite_cycle_query(4)
        assert len(query) == 4
        assert len(query.variables) == 4
        assert set(query.relation_names) == {"male_cast", "female_cast"}

    def test_six_cycle_shape(self):
        query = bipartite_cycle_query(6)
        assert len(query) == 6
        assert len(query.variables) == 6

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            bipartite_cycle_query(5)

    def test_gaifman_is_a_cycle(self):
        graph = gaifman_graph(bipartite_cycle_query(6))
        assert all(degree == 2 for _, degree in graph.degree())
