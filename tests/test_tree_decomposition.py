"""Tests for the ordered tree-decomposition structure."""

import pytest

from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.query.parser import parse_query
from repro.query.patterns import clique_query, cycle_query, path_query
from repro.query.terms import Variable


@pytest.fixture
def figure3_td() -> TreeDecomposition:
    """The TD on the right of the paper's Figure 3."""
    return TreeDecomposition.build(
        (
            ["x1", "x2"],
            [
                (
                    ["x2", "x3", "x4"],
                    [
                        (["x3", "x5"], []),
                        (["x4", "x6"], []),
                    ],
                )
            ],
        )
    )


class TestConstruction:
    def test_build_nested_spec(self, figure3_td):
        assert figure3_td.num_nodes == 4
        assert figure3_td.root == 0

    def test_singleton(self):
        td = TreeDecomposition.singleton(["x", "y"])
        assert td.num_nodes == 1
        assert td.bag(0) == {Variable("x"), Variable("y")}

    def test_path_constructor(self):
        td = TreeDecomposition.path([["a", "b"], ["b", "c"], ["c", "d"]])
        assert td.num_nodes == 3
        assert td.parent(2) == 1

    def test_string_members_coerced_to_variables(self):
        td = TreeDecomposition([["x"]], [None])
        assert td.bag(0) == {Variable("x")}

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            TreeDecomposition([["x"], ["y"]], [None])

    def test_non_root_without_parent_rejected(self):
        with pytest.raises(ValueError):
            TreeDecomposition([["x"], ["y"]], [None, None])

    def test_cycle_in_tree_rejected(self):
        with pytest.raises(ValueError):
            TreeDecomposition([["x"], ["y"]], [None, 1], children={0: [1], 1: [1]})

    def test_empty_decomposition_rejected(self):
        with pytest.raises(ValueError):
            TreeDecomposition([], [])


class TestStructure:
    def test_preorder(self, figure3_td):
        assert figure3_td.preorder() == (0, 1, 2, 3)

    def test_children_order_preserved(self, figure3_td):
        assert figure3_td.children(1) == (2, 3)

    def test_subtree(self, figure3_td):
        assert figure3_td.subtree(1) == (1, 2, 3)

    def test_adhesion(self, figure3_td):
        assert figure3_td.adhesion(1) == {Variable("x2")}
        assert figure3_td.adhesion(2) == {Variable("x3")}
        assert figure3_td.adhesion(0) == frozenset()

    def test_adhesions_listing(self, figure3_td):
        assert len(figure3_td.adhesions()) == 3

    def test_owner_is_preorder_minimal(self, figure3_td):
        assert figure3_td.owner(Variable("x2")) == 0
        assert figure3_td.owner(Variable("x3")) == 1
        assert figure3_td.owner(Variable("x5")) == 2

    def test_owner_unknown_variable(self, figure3_td):
        with pytest.raises(KeyError):
            figure3_td.owner(Variable("zzz"))

    def test_owned_variables(self, figure3_td):
        assert figure3_td.owned_variables(0) == {Variable("x1"), Variable("x2")}
        assert figure3_td.owned_variables(1) == {Variable("x3"), Variable("x4")}

    def test_subtree_variables(self, figure3_td):
        assert figure3_td.subtree_variables(1) == {
            Variable("x3"), Variable("x4"), Variable("x5"), Variable("x6")
        }

    def test_all_variables(self, figure3_td):
        assert len(figure3_td.all_variables()) == 6


class TestMeasures:
    def test_width(self, figure3_td):
        assert figure3_td.width == 2

    def test_max_adhesion_size(self, figure3_td):
        assert figure3_td.max_adhesion_size == 1

    def test_depth(self, figure3_td):
        assert figure3_td.depth == 2

    def test_singleton_measures(self):
        td = TreeDecomposition.singleton(["a", "b", "c"])
        assert td.width == 2
        assert td.max_adhesion_size == 0
        assert td.depth == 0


class TestValidation:
    def test_figure3_td_is_valid_for_its_query(self, figure3_td):
        query = parse_query(
            "R(x1, x2), R(x2, x3), R(x2, x4), R(x3, x4), R(x3, x5), R(x4, x6)"
        )
        figure3_td.validate(query)

    def test_atom_coverage_violation_detected(self, figure3_td):
        query = parse_query("R(x1, x6)")
        with pytest.raises(ValueError):
            figure3_td.validate(query)

    def test_variable_mismatch_detected(self, figure3_td):
        query = parse_query("R(x1, x2)")
        with pytest.raises(ValueError):
            figure3_td.validate(query)

    def test_running_intersection_violation_detected(self):
        # x appears in two bags that are not adjacent (middle bag misses it).
        td = TreeDecomposition.path([["x", "y"], ["y", "z"], ["z", "x"]])
        with pytest.raises(ValueError):
            td.validate()

    def test_is_valid_boolean_form(self, figure3_td):
        assert figure3_td.is_valid()
        broken = TreeDecomposition.path([["x", "y"], ["y", "z"], ["z", "x"]])
        assert not broken.is_valid()


class TestManipulation:
    def test_remove_redundant_bags(self):
        td = TreeDecomposition.path([["x", "y", "z"], ["y", "z"], ["z", "w"]])
        cleaned = td.remove_redundant_bags()
        assert cleaned.num_nodes == 2
        assert cleaned.is_valid()

    def test_remove_redundant_keeps_non_redundant(self):
        td = TreeDecomposition.path([["x", "y"], ["y", "z"]])
        assert td.remove_redundant_bags().num_nodes == 2

    def test_contract_ownerless_bags(self):
        td = TreeDecomposition.build(
            (["x", "y", "z"], [(["y", "z"], [(["z", "w"], [])])])
        )
        contracted = td.contract_ownerless_bags()
        assert contracted.num_nodes == 2
        assert all(contracted.owned_variables(node) for node in contracted.preorder())

    def test_contract_preserves_validity(self):
        td = TreeDecomposition.build(
            (["x", "y", "z"], [(["y", "z"], [(["z", "w"], [])])])
        )
        query = parse_query("R(x, y), R(y, z), R(z, w)")
        td.contract_ownerless_bags().validate(query)


class TestCanonicalForm:
    def test_equal_structures_equal(self):
        left = TreeDecomposition.path([["a", "b"], ["b", "c"]])
        right = TreeDecomposition.path([["a", "b"], ["b", "c"]])
        assert left == right
        assert hash(left) == hash(right)

    def test_different_structures_differ(self):
        left = TreeDecomposition.path([["a", "b"], ["b", "c"]])
        right = TreeDecomposition.singleton(["a", "b", "c"])
        assert left != right

    def test_describe_mentions_bags(self, figure3_td):
        description = figure3_td.describe()
        assert "x2" in description
        assert "adhesion" in description

    def test_repr(self, figure3_td):
        assert "TreeDecomposition" in repr(figure3_td)
