"""Tests for edge-list / CSV loaders."""

import pytest

from repro.storage.loaders import (
    load_csv_relation,
    load_edge_list,
    relation_from_edges,
    save_edge_list,
)
from repro.storage.relation import Relation


class TestRelationFromEdges:
    def test_basic(self):
        relation = relation_from_edges([(1, 2), (2, 3)])
        assert len(relation) == 2
        assert relation.attributes == ("src", "dst")

    def test_self_loops_dropped_by_default(self):
        relation = relation_from_edges([(1, 1), (1, 2)])
        assert len(relation) == 1

    def test_self_loops_kept_when_requested(self):
        relation = relation_from_edges([(1, 1)], drop_self_loops=False)
        assert (1, 1) in relation

    def test_symmetric_adds_reverse_edges(self):
        relation = relation_from_edges([(1, 2)], symmetric=True)
        assert (2, 1) in relation
        assert len(relation) == 2


class TestEdgeListFiles:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "graph.txt"
        original = relation_from_edges([(1, 2), (3, 4), (5, 6)])
        save_edge_list(original, path, comment="test graph")
        loaded = load_edge_list(path)
        assert loaded.tuples == original.tuples

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# SNAP style header\n\n1\t2\n3 4\n")
        loaded = load_edge_list(path)
        assert set(loaded) == {(1, 2), (3, 4)}

    def test_max_edges(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("\n".join(f"{i} {i + 1}" for i in range(10)))
        loaded = load_edge_list(path, max_edges=3)
        assert len(loaded) == 3

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1\n")
        with pytest.raises(ValueError):
            load_edge_list(path)

    def test_save_requires_binary_relation(self, tmp_path):
        ternary = Relation("T", ("a", "b", "c"), [(1, 2, 3)])
        with pytest.raises(ValueError):
            save_edge_list(ternary, tmp_path / "t.txt")


class TestCsvLoader:
    def test_with_header(self, tmp_path):
        path = tmp_path / "cast.csv"
        path.write_text("person_id,movie_id\n1,10\n2,20\n")
        relation = load_csv_relation(path, "cast", value_type=int)
        assert relation.attributes == ("person_id", "movie_id")
        assert (1, 10) in relation

    def test_without_header(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("1,10\n2,20\n")
        relation = load_csv_relation(path, "data", has_header=False, value_type=int)
        assert relation.attributes == ("c0", "c1")

    def test_explicit_attributes_override_header(self, tmp_path):
        path = tmp_path / "cast.csv"
        path.write_text("a,b\n1,2\n")
        relation = load_csv_relation(path, "cast", attributes=("x", "y"), value_type=int)
        assert relation.attributes == ("x", "y")

    def test_max_rows(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a,b\n" + "\n".join(f"{i},{i}" for i in range(20)))
        relation = load_csv_relation(path, "data", value_type=int, max_rows=5)
        assert len(relation) == 5
