"""Columnar trie backend: differential tests against the reference node
backend, shared-index-cache semantics, and cross-algorithm agreement."""

import random

import pytest

from repro.baselines.generic_join import GenericJoin
from repro.core.clftj import CachedLeapfrogTrieJoin
from repro.core.instrumentation import OperationCounter
from repro.core.lftj import LeapfrogTrieJoin
from repro.decomposition.generic import generic_decompose
from repro.engine.engine import QueryEngine
from repro.query.parser import parse_query
from repro.query.patterns import cycle_query, path_query, star_query
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.storage.trie import NodeTrieIndex, TrieIndex
from repro.storage.views import atom_signature, atom_trie

from tests.conftest import brute_force_count, brute_force_evaluate, random_edge_database


def _random_relation(rng: random.Random, arity: int, rows: int, domain: int) -> Relation:
    tuples = {
        tuple(rng.randint(0, domain) for _ in range(arity)) for _ in range(rows)
    }
    return Relation("T", tuple(f"c{i}" for i in range(arity)), tuples)


def _enumerate(index) -> list:
    """Full depth-first enumeration through the iterator interface."""
    iterator = index.iterator()
    results = []

    def walk(prefix):
        iterator.open()
        while not iterator.at_end():
            value = prefix + (iterator.key(),)
            if len(value) == index.depth:
                results.append(value)
            else:
                walk(value)
            iterator.next()
        iterator.up()

    walk(())
    return results


class TestColumnarMatchesNodeBackend:
    @pytest.mark.parametrize("arity,rows,domain,seed", [
        (1, 30, 10, 0),
        (2, 50, 8, 1),
        (2, 200, 30, 2),
        (3, 120, 6, 3),
        (3, 40, 3, 4),
    ])
    def test_enumeration_identical(self, arity, rows, domain, seed):
        relation = _random_relation(random.Random(seed), arity, rows, domain)
        order = tuple(random.Random(seed + 100).sample(range(arity), arity))
        columnar = TrieIndex.build(relation, order)
        nodes = NodeTrieIndex.build(relation, order)
        assert _enumerate(columnar) == _enumerate(nodes)
        assert columnar.tuple_count() == nodes.tuple_count()
        assert len(columnar) == len(nodes)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_walks_identical_including_counters(self, seed):
        """Identical operation sequences give identical keys AND identical
        memory-access accounting on both backends."""
        rng = random.Random(seed)
        relation = _random_relation(rng, 3, 80, 5)
        col_counter, node_counter = OperationCounter(), OperationCounter()
        col = TrieIndex.build(relation, (0, 1, 2)).iterator(col_counter)
        node = NodeTrieIndex.build(relation, (0, 1, 2)).iterator(node_counter)

        def step(action, argument=None):
            outcomes = []
            for iterator in (col, node):
                try:
                    result = getattr(iterator, action)(*([argument] if argument is not None else []))
                    outcomes.append(("ok", result))
                except RuntimeError:
                    outcomes.append(("error", None))
            assert outcomes[0] == outcomes[1], f"divergence on {action}({argument})"
            return outcomes[0]

        for _ in range(400):
            choice = rng.random()
            if choice < 0.35:
                step("open")
            elif choice < 0.5:
                step("up")
            elif choice < 0.7:
                step("next")
            elif choice < 0.9:
                step("seek", rng.randint(0, 6))
            else:
                status, _ = step("at_end")
                if status == "ok":
                    step("key")
            assert col.depth == node.depth
            if col.depth:
                assert col.current_prefix() == node.current_prefix()
        assert col_counter.as_dict() == node_counter.as_dict()

    def test_empty_relation_both_backends(self):
        empty = Relation("E", ("a", "b"), [])
        for cls in (TrieIndex, NodeTrieIndex):
            iterator = cls.build(empty, (0, 1)).iterator()
            iterator.open()
            assert iterator.at_end()
            with pytest.raises(RuntimeError):
                iterator.open()

    def test_level_sizes(self):
        trie = TrieIndex.from_tuples([(1, 2), (1, 3), (2, 2)])
        assert trie.level_sizes() == (2, 3)


class TestSharedIndexCache:
    def test_atom_trie_identity_across_constructions(self, small_graph_db):
        query = cycle_query(3)
        first = LeapfrogTrieJoin(query, small_graph_db)
        second = LeapfrogTrieJoin(query, small_graph_db)
        for left, right in zip(first._atom_tries, second._atom_tries):
            assert left is right

    def test_triangle_self_join_shares_tries_between_atoms(self, small_graph_db):
        """E(x1,x2) and E(x2,x3) induce the same (signature, order) view, so
        the triangle needs only two physical tries, not three."""
        small_graph_db.clear_index_cache()
        builds_before = small_graph_db.index_builds
        joiner = LeapfrogTrieJoin(cycle_query(3), small_graph_db)
        assert joiner._atom_tries[0] is joiner._atom_tries[1]
        assert small_graph_db.index_builds - builds_before == 2

    def test_warm_engine_runs_build_no_new_tries(self, small_graph_db):
        engine = QueryEngine(small_graph_db)
        query = cycle_query(3)
        first = engine.count(query, algorithm="lftj")
        builds_after_first = small_graph_db.index_builds
        second = engine.count(query, algorithm="lftj")
        third = engine.count(query, algorithm="lftj")
        assert first.count == second.count == third.count
        assert small_graph_db.index_builds == builds_after_first
        assert small_graph_db.index_cache_hits > 0

    def test_tries_shared_across_algorithms(self, small_graph_db):
        """LFTJ and CLFTJ draw from the same cache when their per-atom level
        orders coincide."""
        engine = QueryEngine(small_graph_db)
        query = path_query(3)
        engine.count(query, algorithm="lftj")
        builds_after_lftj = small_graph_db.index_builds
        engine.count(query, algorithm="lftj")
        assert small_graph_db.index_builds == builds_after_lftj

    def test_signature_erases_variable_names(self):
        left = parse_query("E(x, y)").atoms[0]
        right = parse_query("E(a, b)").atoms[0]
        assert atom_signature(left) == atom_signature(right) == (0, 1)
        repeated = parse_query("E(x, x)").atoms[0]
        assert atom_signature(repeated) == (0, 0)
        constant = parse_query("R(x, 3, y)").atoms[0]
        assert atom_signature(constant) == (0, ("c", 3), 1)

    def test_renamed_queries_share_tries(self, small_graph_db):
        first = LeapfrogTrieJoin(parse_query("E(x, y), E(y, z)"), small_graph_db)
        second = LeapfrogTrieJoin(parse_query("E(a, b), E(b, c)"), small_graph_db)
        assert first._atom_tries[0] is second._atom_tries[0]

    def test_selective_atoms_do_not_collide(self, small_graph_db):
        edge = small_graph_db.relation("E").tuples[0]
        query = parse_query(f"E(x, y), E(y, {edge[1]})")
        plain = atom_trie(small_graph_db, query.atoms[0], (0, 1))
        selected = atom_trie(small_graph_db, query.atoms[1], (0,))
        assert plain is not selected
        expected = brute_force_count(query, small_graph_db)
        assert LeapfrogTrieJoin(query, small_graph_db).count() == expected

    def test_constant_bearing_atoms_bypass_the_cache(self, small_graph_db):
        """Signatures embedding constants must not pile up in the cache — a
        parameterized workload would otherwise leak one index per value."""
        small_graph_db.clear_index_cache()
        for value in range(1, 6):
            query = parse_query(f"E(x, y), E(y, {value})")
            LeapfrogTrieJoin(query, small_graph_db).count()
        cached_signatures = small_graph_db.index_cache_size()
        assert cached_signatures == 1  # only the constant-free E(x, y) trie

    def test_replacing_relation_invalidates_shared_tries(self, small_graph_db):
        query = cycle_query(3)
        stale = LeapfrogTrieJoin(query, small_graph_db)._atom_tries[0]
        replacement = Relation("E", ("src", "dst"), [(1, 2), (2, 3), (3, 1)])
        small_graph_db.add_relation(replacement, replace=True)
        fresh = LeapfrogTrieJoin(query, small_graph_db)
        assert fresh._atom_tries[0] is not stale
        # The single directed 3-cycle matches in its three rotations.
        assert fresh.count() == 3

    def test_generic_join_prefix_indexes_are_shared(self, small_graph_db):
        query = cycle_query(3)
        first = GenericJoin(query, small_graph_db)
        builds = small_graph_db.index_builds
        second = GenericJoin(query, small_graph_db)
        assert small_graph_db.index_builds == builds
        for left, right in zip(first._indexes, second._indexes):
            assert left is right

    def test_node_backend_bypasses_the_cache(self, small_graph_db):
        small_graph_db.clear_index_cache()
        LeapfrogTrieJoin(cycle_query(3), small_graph_db, trie_backend="nodes")
        assert small_graph_db.index_cache_size() == 0

    def test_unknown_backend_rejected(self, small_graph_db):
        with pytest.raises(ValueError):
            LeapfrogTrieJoin(cycle_query(3), small_graph_db, trie_backend="mmap")


class TestBackendAgreement:
    """LFTJ / CLFTJ / GenericJoin agree on the columnar backend."""

    QUERIES = [
        lambda: cycle_query(3),
        lambda: cycle_query(4),
        lambda: path_query(3),
        lambda: star_query(3),
        lambda: parse_query("E(x, y), E(y, x)", name="2-loop"),
        lambda: parse_query("E(x, x), E(x, y)", name="self-loop-out"),
    ]

    @pytest.mark.parametrize("query_factory", QUERIES)
    @pytest.mark.parametrize("seed", [0, 7])
    def test_counts_agree(self, query_factory, seed):
        database = random_edge_database(seed=seed)
        query = query_factory()
        expected = brute_force_count(query, database)
        assert LeapfrogTrieJoin(query, database).count() == expected
        assert GenericJoin(query, database).count() == expected
        decomposition = generic_decompose(query)
        clftj = CachedLeapfrogTrieJoin(query, database, decomposition)
        assert clftj.count() == expected

    @pytest.mark.parametrize("query_factory", QUERIES)
    def test_evaluation_sets_agree(self, query_factory):
        database = random_edge_database(seed=11)
        query = query_factory()
        expected = brute_force_evaluate(query, database)

        def rows(executor):
            order = executor.variable_order
            return {
                tuple(dict(zip(order, row))[variable] for variable in query.variables)
                for row in executor.evaluate()
            }

        assert rows(LeapfrogTrieJoin(query, database)) == expected
        assert rows(GenericJoin(query, database)) == expected
        decomposition = generic_decompose(query)
        assert rows(CachedLeapfrogTrieJoin(query, database, decomposition)) == expected

    def test_node_and_columnar_backends_agree_operation_for_operation(self, small_graph_db):
        """On the raw-object path both backends report identical op counts.

        (The encoded columnar path intentionally diverges: its batched
        deepest-level kernel records block-scan accesses instead of per-key
        rotations, so the comparison is made in raw mode — the reference
        regime the nodes backend lives in.)
        """
        query = cycle_query(4)
        raw_db = Database(list(small_graph_db), name="raw", encode=False)
        col_counter, node_counter = OperationCounter(), OperationCounter()
        col = LeapfrogTrieJoin(query, raw_db, counter=col_counter).count()
        node = LeapfrogTrieJoin(
            query, raw_db, counter=node_counter, trie_backend="nodes"
        ).count()
        assert col == node
        assert col == LeapfrogTrieJoin(query, small_graph_db).count()
        assert col_counter.as_dict() == node_counter.as_dict()
