"""Concurrent-client correctness: the single-client assumptions fixed in PR 10.

Three groups of regressions:

* **Cache-delta attribution** — per-run ``index_builds``/``plan_builds``/
  ``compiled_builds`` metadata used to be computed by diffing the global
  :class:`~repro.storage.database.Database` counters before/after an
  execution, so two concurrent executions misattributed each other's
  builds.  The engine now threads a per-execution
  :class:`~repro.storage.database.CacheCounterScope` through execution
  (pool worker threads adopt the initiating execution's scopes), so the
  metadata reports exactly the work that execution performed.

* **Per-execution deadlines** — ``timeout=`` travels inside the
  :class:`~repro.engine.executors.ExecutorRequest` and is assigned to the
  executor unconditionally, so overlapping timed queries on one engine
  never observe each other's clocks.

* **Concurrent-clients stress** — N threads x M queries over one shared
  ``Database`` with mixed algorithms, mixed timeouts and one mutating
  writer must return exactly the serial-oracle answers, and the summed
  per-request metadata must reconcile with the global counters.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.engine.engine import QueryEngine
from repro.engine.faults import QueryTimeoutError
from repro.query.parser import parse_query
from repro.query.patterns import cycle_query, path_query
from repro.storage.database import Database
from repro.storage.relation import Relation

from tests.conftest import brute_force_count, random_edge_database

#: Metadata keys whose per-run values must sum to the global counter delta.
BUILD_COUNTERS = ("index_builds", "plan_builds", "compiled_builds")


def run_threads(workers):
    """Start, join and re-raise: any worker exception fails the test."""
    errors = []

    def guard(fn):
        def wrapped():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        return wrapped

    threads = [threading.Thread(target=guard(fn)) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "worker thread hung"
    if errors:
        raise errors[0]


class TestCacheDeltaAttribution:
    """Per-run build metadata must attribute only the run's own work."""

    def test_open_scope_never_sees_another_threads_builds(self):
        """Deterministic form of the old race: a scope held open in one
        thread across another thread's entire cold execution must record
        nothing (the global-diff approach counted everything)."""
        db = random_edge_database()
        engine = QueryEngine(db)
        entered = threading.Event()
        release = threading.Event()
        observed = {}

        def bystander():
            with db.execution_scope() as scope:
                entered.set()
                assert release.wait(timeout=60)
                observed["deltas"] = scope.as_dict()

        thread = threading.Thread(target=bystander)
        thread.start()
        try:
            assert entered.wait(timeout=60)
            result = engine.count(cycle_query(3), algorithm="clftj")
        finally:
            release.set()
            thread.join(timeout=60)
        assert observed["deltas"] == {}
        # ... while the execution that did the cold work reports it.
        assert result.metadata["plan_builds"] == 1
        assert result.metadata["index_builds"] >= 1

    def test_warm_runs_stay_zero_while_a_cold_thread_builds(self):
        """A warm query looping in one thread must keep reporting zero
        builds while another thread builds plans/indexes/drivers for new
        query shapes on the same database."""
        db = random_edge_database()
        engine = QueryEngine(db)
        warm_query = cycle_query(3)
        engine.count(warm_query, algorithm="clftj")  # warm every cache
        barrier = threading.Barrier(2)
        warm_metadata = []
        cold_results = []

        def warm_loop():
            barrier.wait(timeout=60)
            for _ in range(30):
                result = engine.count(warm_query, algorithm="clftj")
                warm_metadata.append(result.metadata)

        def cold_loop():
            barrier.wait(timeout=60)
            for shape in (path_query(2), path_query(3), cycle_query(4), path_query(4)):
                cold_results.append(engine.count(shape, algorithm="clftj"))

        run_threads([warm_loop, cold_loop])
        for metadata in warm_metadata:
            for key in BUILD_COUNTERS:
                assert metadata[key] == 0, (key, metadata)
        assert sum(r.metadata["plan_builds"] for r in cold_results) == len(cold_results)

    def test_concurrent_metadata_reconciles_with_global_counters(self):
        """Summed per-run build metadata == global counter delta, even when
        the builds happened concurrently (nothing double- or un-counted)."""
        db = random_edge_database()
        engine = QueryEngine(db)
        before = {key: getattr(db, key) for key in BUILD_COUNTERS}
        shapes = [cycle_query(3), path_query(3), cycle_query(4), path_query(2)]
        results = [[] for _ in shapes]
        barrier = threading.Barrier(len(shapes))

        def client(index, shape):
            def work():
                barrier.wait(timeout=60)
                for _ in range(5):
                    results[index].append(engine.count(shape, algorithm="clftj"))

            return work

        run_threads([client(i, shape) for i, shape in enumerate(shapes)])
        for key in BUILD_COUNTERS:
            total = sum(r.metadata[key] for group in results for r in group)
            assert getattr(db, key) - before[key] == total, key

    @pytest.mark.parametrize("backend", ["threads"])
    def test_parallel_workers_attribute_to_the_initiating_run(self, backend):
        """Pool worker threads adopt the submitting execution's scope, so a
        parallel cold run still owns its builds in the metadata."""
        db = random_edge_database()
        engine = QueryEngine(db)
        result = engine.count(
            cycle_query(3), algorithm="pclftj", parallel=2, parallel_backend=backend
        )
        # >= 1 (not == 1): the parallel executor also plans its morsel
        # template — still this run's own work.
        assert result.metadata["plan_builds"] >= 1
        assert result.metadata["index_builds"] >= 1
        warm = engine.count(
            cycle_query(3), algorithm="pclftj", parallel=2, parallel_backend=backend
        )
        for key in BUILD_COUNTERS:
            assert warm.metadata[key] == 0, (key, warm.metadata)


class TestOverlappingDeadlines:
    """Deadline state is strictly per-execution."""

    @pytest.mark.parametrize("algorithm", ["clftj", "lftj"])
    def test_overlapping_timed_queries_do_not_share_clocks(self, algorithm):
        """The regression from ISSUE.md: two overlapping ``timeout=``
        queries — an already-expired one and a generous one — must resolve
        independently (the short one raises, the long one completes with
        the correct answer)."""
        db = random_edge_database()
        engine = QueryEngine(db)
        query = cycle_query(3)
        expected = brute_force_count(query, db)
        engine.count(query, algorithm=algorithm)  # warm (build outside timing)
        barrier = threading.Barrier(2)
        outcomes = {}

        def short_client():
            barrier.wait(timeout=60)
            for _ in range(10):
                with pytest.raises(QueryTimeoutError):
                    engine.count(query, algorithm=algorithm, timeout=1e-9)
            outcomes["short"] = "timed out as requested"

        def long_client():
            barrier.wait(timeout=60)
            for _ in range(10):
                result = engine.count(query, algorithm=algorithm, timeout=60.0)
                assert result.count == expected
            outcomes["long"] = "completed"

        run_threads([short_client, long_client])
        assert outcomes == {
            "short": "timed out as requested",
            "long": "completed",
        }

    def test_expired_deadline_never_leaks_into_the_next_run(self):
        """After a timed-out execution, the same query without a timeout
        (and with a fresh generous one) must succeed: the executor request
        carries the deadline, and the engine overwrites ``executor.deadline``
        unconditionally."""
        db = random_edge_database()
        engine = QueryEngine(db)
        query = cycle_query(3)
        expected = brute_force_count(query, db)
        with pytest.raises(QueryTimeoutError):
            engine.count(query, algorithm="clftj", timeout=1e-9)
        assert engine.count(query, algorithm="clftj").count == expected
        assert engine.count(query, algorithm="clftj", timeout=60.0).count == expected


class TestConcurrentClientsStress:
    """N threads x M queries over one Database, mixed algorithms and
    timeouts, one mutating writer — results must equal the serial oracle
    and the counters must stay coherent."""

    NUM_CLIENTS = 6
    ITERATIONS = 12

    def make_database(self):
        rng = random.Random(42)
        edges = {
            (rng.randint(1, 20), rng.randint(1, 20))
            for _ in range(70)
        }
        edges = {edge for edge in edges if edge[0] != edge[1]}
        writes = {
            (rng.randint(1, 12), rng.randint(1, 12))
            for _ in range(25)
        }
        writes = {row for row in writes if row[0] != row[1]}
        return Database(
            [
                Relation("E", ("src", "dst"), edges),
                Relation("W", ("a", "b"), writes),
            ],
            name="stress",
        )

    def test_stress_mixed_clients_with_mutating_writer(self):
        db = self.make_database()
        engine = QueryEngine(db)
        # The read workload: immutable relation E, so every concurrent
        # result must be byte-identical to the serial oracle.
        workload = [
            # (query, algorithm, extra params, algorithm honours timeout=)
            (cycle_query(3), "clftj", {}, True),
            (cycle_query(3), "lftj", {}, True),
            (path_query(3), "generic_join", {}, False),
            (cycle_query(3), "pclftj", {"parallel": 2}, True),
            (path_query(4), "clftj", {"compile": False}, True),
            (cycle_query(4), "lftj", {}, True),
        ]
        expected = {
            id(query): brute_force_count(query, db) for query, _, _, _ in workload
        }
        before = {key: getattr(db, key) for key in BUILD_COUNTERS}
        barrier = threading.Barrier(self.NUM_CLIENTS + 1)
        per_client_results = [[] for _ in range(self.NUM_CLIENTS)]
        writer_log = []

        def client(index):
            query, algorithm, params, timed = workload[index % len(workload)]

            def work():
                barrier.wait(timeout=60)
                for iteration in range(self.ITERATIONS):
                    if timed and iteration % 5 == 4:
                        # Mixed timeouts: an already-expired deadline must
                        # fail fast without disturbing anyone else.
                        with pytest.raises(QueryTimeoutError):
                            engine.count(
                                query, algorithm=algorithm, timeout=1e-9, **params
                            )
                        continue
                    timeout = 60.0 if (timed and iteration % 2) else None
                    result = engine.count(
                        query, algorithm=algorithm, timeout=timeout, **params
                    )
                    assert result.count == expected[id(query)]
                    per_client_results[index].append(result)

            return work

        def writer():
            # One mutating writer churning a relation the readers do not
            # touch: exercises the shared lock, index patching, compiled
            # eviction and version bumps underneath concurrent reads.
            rng = random.Random(7)
            barrier.wait(timeout=60)
            for _ in range(20):
                rows = [
                    (rng.randint(1, 12), rng.randint(13, 24)) for _ in range(3)
                ]
                db.insert("W", rows)
                writer_log.append(("insert", rows))
                db.delete("W", rows[:1])
                writer_log.append(("delete", rows[:1]))

        run_threads([client(i) for i in range(self.NUM_CLIENTS)] + [writer])
        assert len(writer_log) == 40

        # Every client's results are internally coherent...
        for results in per_client_results:
            assert results, "every client completed untimed runs"
            for result in results:
                for key in BUILD_COUNTERS:
                    assert result.metadata[key] >= 0
        # ... and the summed per-run build metadata reconciles exactly with
        # the global counters (timed-out runs never produced a result, and
        # their partial work — plus the writer's churn — happened under
        # scopes or outside them consistently, so nothing is double-counted).
        engine_runs = [r for results in per_client_results for r in results]
        for key in ("plan_builds", "compiled_builds"):
            total = sum(r.metadata[key] for r in engine_runs)
            assert getattr(db, key) - before[key] >= total, key

        # The writer's relation ends exactly at its serial final state.
        final = engine.count(parse_query("W(x, y)"), algorithm="lftj")
        replay = set(self.make_database().relation("W").tuples)
        for action, rows in writer_log:
            if action == "insert":
                replay |= set(rows)
            else:
                replay -= set(rows)
        assert final.count == len(replay)
        assert set(db.relation("W").tuples) == replay
