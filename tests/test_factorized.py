"""Tests for factorised result representations."""

import pytest

from repro.core.factorized import FactorizedNode, expand_assignments
from repro.query.terms import Variable


def _vars(*names):
    return tuple(Variable(name) for name in names)


class TestFactorizedNode:
    def test_flat_node_counts_entries(self):
        node = FactorizedNode(_vars("x"))
        node.add_entry((1,))
        node.add_entry((2,))
        assert node.count() == 2

    def test_entry_arity_checked(self):
        node = FactorizedNode(_vars("x", "y"))
        with pytest.raises(ValueError):
            node.add_entry((1,))

    def test_count_multiplies_children(self):
        left = FactorizedNode(_vars("y"))
        left.add_entry((10,))
        left.add_entry((11,))
        right = FactorizedNode(_vars("z"))
        right.add_entry((20,))
        parent = FactorizedNode(_vars("x"))
        parent.add_entry((1,), (left, right))
        parent.add_entry((2,), (left, right))
        assert parent.count() == 4  # 2 entries * (2 * 1)

    def test_count_zero_when_child_empty(self):
        empty = FactorizedNode(_vars("y"))
        parent = FactorizedNode(_vars("x"))
        parent.add_entry((1,), (empty,))
        assert parent.count() == 0
        assert parent.is_empty()

    def test_variables_layout_depth_order(self):
        child = FactorizedNode(_vars("y", "z"))
        child.add_entry((5, 6))
        parent = FactorizedNode(_vars("x"))
        parent.add_entry((1,), (child,))
        assert parent.variables() == _vars("x", "y", "z")

    def test_enumerate_expands_cross_product(self):
        left = FactorizedNode(_vars("y"))
        left.add_entry((10,))
        left.add_entry((11,))
        right = FactorizedNode(_vars("z"))
        right.add_entry((20,))
        right.add_entry((21,))
        parent = FactorizedNode(_vars("x"))
        parent.add_entry((1,), (left, right))
        rows = set(parent.enumerate())
        assert rows == {(1, 10, 20), (1, 10, 21), (1, 11, 20), (1, 11, 21)}

    def test_enumerate_count_consistency(self):
        child = FactorizedNode(_vars("b"))
        for value in range(3):
            child.add_entry((value,))
        parent = FactorizedNode(_vars("a"))
        for value in range(4):
            parent.add_entry((value,), (child,))
        assert len(list(parent.enumerate())) == parent.count() == 12

    def test_enumerate_dicts(self):
        node = FactorizedNode(_vars("x", "y"))
        node.add_entry((1, 2))
        assert list(node.enumerate_dicts()) == [{Variable("x"): 1, Variable("y"): 2}]

    def test_memory_entries_counts_shared_children_once(self):
        shared = FactorizedNode(_vars("y"))
        shared.add_entry((1,))
        parent = FactorizedNode(_vars("x"))
        parent.add_entry((1,), (shared,))
        parent.add_entry((2,), (shared,))
        assert parent.memory_entries() == 3  # two parent entries + one shared child entry

    def test_repr_mentions_count(self):
        node = FactorizedNode(_vars("x"))
        node.add_entry((1,))
        assert "count=1" in repr(node)


class TestExpandAssignments:
    def test_no_factors_returns_prefix(self):
        order = _vars("x", "y")
        rows = list(expand_assignments({Variable("x"): 1, Variable("y"): 2}, [], order))
        assert rows == [(1, 2)]

    def test_single_factor_fills_gap(self):
        order = _vars("x", "y", "z")
        factor = FactorizedNode(_vars("y"))
        factor.add_entry((7,))
        factor.add_entry((8,))
        rows = set(
            expand_assignments({Variable("x"): 1, Variable("z"): 3}, [(1, factor)], order)
        )
        assert rows == {(1, 7, 3), (1, 8, 3)}

    def test_two_factors_cross_product(self):
        order = _vars("a", "b", "c")
        left = FactorizedNode(_vars("a"))
        left.add_entry((1,))
        left.add_entry((2,))
        right = FactorizedNode(_vars("c"))
        right.add_entry((9,))
        rows = set(
            expand_assignments({Variable("b"): 5}, [(0, left), (2, right)], order)
        )
        assert rows == {(1, 5, 9), (2, 5, 9)}

    def test_empty_factor_yields_nothing(self):
        order = _vars("x", "y")
        factor = FactorizedNode(_vars("y"))
        rows = list(expand_assignments({Variable("x"): 1}, [(1, factor)], order))
        assert rows == []
